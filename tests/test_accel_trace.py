"""Tests for the per-cycle pipeline tracer."""

import numpy as np
import pytest

from repro.accel import AcceleratorSim, PipelineTracer, higraph
from repro.algorithms import BFS, PageRank
from repro.graph import rmat


@pytest.fixture(scope="module")
def graph():
    return rmat(8, 8.0, seed=31)


class TestTracer:
    def test_samples_every_cycle_by_default(self, graph):
        tracer = PipelineTracer()
        sim = AcceleratorSim(higraph(), graph, BFS(), tracer=tracer)
        res = sim.run(source=0)
        assert len(tracer.trace) == res.stats.scatter_cycles

    def test_interval_thins_samples(self, graph):
        dense = PipelineTracer(interval=1)
        AcceleratorSim(higraph(), graph, BFS(), tracer=dense).run()
        sparse = PipelineTracer(interval=4)
        AcceleratorSim(higraph(), graph, BFS(), tracer=sparse).run()
        assert 0 < len(sparse.trace) <= len(dense.trace) // 3

    def test_tracing_does_not_change_results(self, graph):
        plain = AcceleratorSim(higraph(), graph, PageRank(iterations=2)).run()
        traced = AcceleratorSim(higraph(), graph, PageRank(iterations=2),
                                tracer=PipelineTracer()).run()
        assert np.array_equal(plain.properties, traced.properties)
        assert plain.stats.total_cycles == traced.stats.total_cycles

    def test_vpe_delivery_accounting_consistent(self, graph):
        tracer = PipelineTracer()
        sim = AcceleratorSim(higraph(), graph, BFS(), tracer=tracer)
        res = sim.run(source=0)
        # every delivered record was sampled (interval=1), and records
        # can only undercount edges (coalescing merges them)
        assert sum(tracer.trace.vpe_delivered) == res.stats.vpe_busy_cycles
        assert res.stats.vpe_busy_cycles <= res.stats.edges_processed

    def test_occupancies_bounded_by_capacity(self, graph):
        cfg = higraph()
        tracer = PipelineTracer()
        AcceleratorSim(cfg, graph, PageRank(iterations=1), tracer=tracer).run()
        arrays = tracer.trace.as_arrays()
        stages = 5  # log2(32)
        prop_capacity = cfg.back_channels * stages * cfg.fifo_depth
        assert arrays["propagation_occupancy"].max() <= prop_capacity
        assert arrays["epe_in_occupancy"].max() <= (cfg.back_channels
                                                    * cfg.epe_queue_depth)

    def test_summary_fields(self, graph):
        tracer = PipelineTracer()
        AcceleratorSim(higraph(), graph, BFS(), tracer=tracer).run()
        s = tracer.trace.summary(back_channels=32)
        assert s["samples"] == len(tracer.trace)
        assert 0 <= s["mean_vpe_rate"] <= 1.0
        assert s["peak_propagation_occupancy"] >= s["mean_propagation_occupancy"]

    def test_empty_trace_summary(self):
        tracer = PipelineTracer()
        assert tracer.trace.summary(32) == {"samples": 0}

    def test_bad_interval_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            PipelineTracer(interval=0)
