"""SARIF 2.1.0 export and the ``--update-baseline`` diff summary."""

import json
import textwrap
from pathlib import Path

from repro.analysis import lint
from repro.analysis.baseline import BaselineEntry
from repro.analysis.findings import Finding
from repro.analysis.runner import LintReport, format_text
from repro.analysis.sarif import format_sarif, sarif_log


def write(root: Path, relpath: str, source: str) -> None:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")


def report_with(findings=(), baselined=()):
    return LintReport(root="/fake/root", rules_run=["module-state"],
                      findings=list(findings), baselined=list(baselined))


FINDING = Finding(path="src/repro/accel/bad.py", line=7,
                  message="shared mutable dict", symbol="CACHE",
                  rule="module-state", severity="error")


class TestSarif:
    def test_log_shape_and_result_fields(self):
        log = sarif_log(report_with([FINDING]))
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        (result,) = run["results"]
        assert result["ruleId"] == "module-state"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == \
            "src/repro/accel/bad.py"
        assert location["region"] == {"startLine": 7}
        assert "suppressions" not in result

    def test_project_level_finding_omits_region(self):
        finding = Finding(path="src/repro/sweep/jobs.py", line=0,
                          message="module missing", symbol="missing-jobs",
                          rule="cache-key", severity="error")
        (result,) = sarif_log(report_with([finding]))["runs"][0]["results"]
        assert "region" not in result["locations"][0]["physicalLocation"]

    def test_baselined_finding_becomes_suppression(self):
        entry = BaselineEntry(rule="module-state",
                              path="src/repro/accel/bad.py",
                              symbol="CACHE",
                              justification="guarded by a reset hook")
        log = sarif_log(report_with(baselined=[(FINDING, entry)]))
        (result,) = log["runs"][0]["results"]
        (suppression,) = result["suppressions"]
        assert suppression["kind"] == "external"
        assert suppression["justification"] == "guarded by a reset hook"

    def test_rule_catalog_carries_descriptions(self):
        run = sarif_log(report_with([FINDING]))["runs"][0]
        by_id = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        descriptor = by_id["module-state"]
        assert descriptor["shortDescription"]["text"]
        assert descriptor["defaultConfiguration"]["level"] == "error"

    def test_fingerprint_matches_baseline_key(self):
        (result,) = sarif_log(report_with([FINDING]))["runs"][0]["results"]
        assert result["partialFingerprints"]["reproLintKey/v1"] == \
            "module-state::src/repro/accel/bad.py::CACHE"

    def test_format_is_valid_deterministic_json(self):
        text = format_sarif(report_with([FINDING]))
        assert json.loads(text)["runs"]
        assert text == format_sarif(report_with([FINDING]))

    def test_real_project_export_parses(self, tmp_path):
        write(tmp_path, "src/repro/accel/bad.py", """\
            SINKS = []
        """)
        report = lint(tmp_path, rule_ids=["module-state"], use_cache=False)
        log = json.loads(format_sarif(report))
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "module-state"


class TestBaselineDiff:
    def test_update_reports_added_then_removed(self, tmp_path):
        write(tmp_path, "src/repro/accel/bad.py", "SINKS = []\n")
        first = lint(tmp_path, rule_ids=["module-state"],
                     update_baseline=True, use_cache=False)
        assert [e.symbol for e in first.baseline_added] == ["SINKS"]
        assert first.baseline_removed == []
        text = format_text(first)
        assert "added [module-state]" in text
        assert "(+1 -0)" in text

        write(tmp_path, "src/repro/accel/bad.py", "SINKS = ()\n")
        second = lint(tmp_path, rule_ids=["module-state"],
                      update_baseline=True, use_cache=False)
        assert second.baseline_added == []
        assert [e.symbol for e in second.baseline_removed] == ["SINKS"]
        assert "(+0 -1)" in format_text(second)

    def test_plain_run_reports_no_diff(self, tmp_path):
        write(tmp_path, "src/repro/accel/bad.py", "SINKS = []\n")
        report = lint(tmp_path, rule_ids=["module-state"], use_cache=False)
        assert report.baseline_added == []
        assert report.baseline_removed == []
        assert "updated" not in format_text(report)
