"""Fixture-project tests for the fork-safety rule family."""

import textwrap
from pathlib import Path

from repro.analysis import run_rules


def write(root: Path, relpath: str, source: str) -> None:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")


def run(root: Path, rule_id: str):
    findings, ran = run_rules(root, [rule_id])
    assert ran == [rule_id]
    return findings


class TestForkSharedState:
    WORKER_POOL = """\
        MEMO = {}


        def work(item):
            MEMO[item] = item * 2
            return MEMO[item]


        def run(pool, items):
            return list(pool.imap_unordered(work, items))
    """

    def test_worker_reachable_mutation_is_flagged(self, tmp_path):
        write(tmp_path, "src/repro/sweep/runner.py", self.WORKER_POOL)
        findings = run(tmp_path, "fork-shared-state")
        assert [f.symbol for f in findings] == ["MEMO"]
        f = findings[0]
        assert "imap_unordered" in f.message
        assert "work()" in f.message

    def test_transitive_mutation_through_helper_is_flagged(self, tmp_path):
        write(tmp_path, "src/repro/sweep/deep.py", """\
            CACHE = {}


            def remember(key, value):
                CACHE[key] = value


            def work(item):
                remember(item, item)
                return item


            def run(pool, items):
                return pool.map(work, items)
        """)
        findings = run(tmp_path, "fork-shared-state")
        assert [f.symbol for f in findings] == ["CACHE"]
        assert "remember()" in findings[0].message

    def test_driver_side_mutation_is_not_flagged(self, tmp_path):
        write(tmp_path, "src/repro/sweep/driver.py", """\
            MEMO = {}


            def work(item):
                return item


            def run(pool, items):
                MEMO["warm"] = True
                return pool.map(work, items)
        """)
        assert run(tmp_path, "fork-shared-state") == []

    def test_no_pool_dispatch_means_silent(self, tmp_path):
        write(tmp_path, "src/repro/sweep/serial.py", """\
            MEMO = {}


            def work(item):
                MEMO[item] = item
                return item


            def run(items):
                return [work(i) for i in items]
        """)
        assert run(tmp_path, "fork-shared-state") == []

    def test_immutable_module_constant_is_not_flagged(self, tmp_path):
        # rebinding through `global` on a non-container is not shared
        # mutable state; only container mutation is the hazard class
        write(tmp_path, "src/repro/sweep/scalar.py", """\
            LIMIT = (1, 2)


            def work(item):
                return LIMIT[0] + item


            def run(pool, items):
                return pool.map(work, items)
        """)
        assert run(tmp_path, "fork-shared-state") == []


class TestForkAtomicWrite:
    def test_write_mode_open_is_flagged(self, tmp_path):
        write(tmp_path, "src/repro/sweep/out.py", """\
            def save(path, text):
                with open(path, "w") as fh:
                    fh.write(text)
        """)
        findings = run(tmp_path, "fork-atomic-write")
        assert [f.symbol for f in findings] == ["open:w"]
        assert "repro.sweep.atomic" in findings[0].message

    def test_append_and_keyword_mode_are_flagged(self, tmp_path):
        write(tmp_path, "src/repro/sweep/log.py", """\
            def log(path, line):
                fh = open(path, mode="a")
                fh.write(line)
        """)
        assert [f.symbol for f in run(tmp_path, "fork-atomic-write")] == \
            ["open:a"]

    def test_write_text_is_flagged(self, tmp_path):
        write(tmp_path, "src/repro/sweep/meta.py", """\
            def stamp(path):
                path.write_text("done")
        """)
        assert [f.symbol for f in run(tmp_path, "fork-atomic-write")] == \
            ["write_text"]

    def test_read_mode_open_is_quiet(self, tmp_path):
        write(tmp_path, "src/repro/sweep/reader.py", """\
            import json


            def load(path):
                with open(path, encoding="utf-8") as fh:
                    return json.load(fh)
        """)
        assert run(tmp_path, "fork-atomic-write") == []

    def test_atomic_module_itself_is_exempt(self, tmp_path):
        write(tmp_path, "src/repro/sweep/atomic.py", """\
            import os


            def append_line(path, line):
                with open(path, "a") as fh:
                    fh.write(line + "\\n")
                    os.fsync(fh.fileno())
        """)
        assert run(tmp_path, "fork-atomic-write") == []

    def test_outside_sweep_layer_is_out_of_scope(self, tmp_path):
        write(tmp_path, "src/repro/bench/report.py", """\
            def save(path, text):
                with open(path, "w") as fh:
                    fh.write(text)
        """)
        assert run(tmp_path, "fork-atomic-write") == []


class TestForkCapture:
    def test_module_level_lock_is_flagged(self, tmp_path):
        write(tmp_path, "src/repro/sweep/locked.py", """\
            import threading

            _LOCK = threading.Lock()


            def guarded():
                with _LOCK:
                    return 1
        """)
        findings = run(tmp_path, "fork-capture")
        assert [f.symbol for f in findings] == ["_LOCK"]
        assert "fork" in findings[0].message

    def test_module_level_file_handle_is_flagged(self, tmp_path):
        write(tmp_path, "src/repro/sweep/handle.py", """\
            LOG = open("/tmp/sweep.log", "a")
        """)
        findings = run(tmp_path, "fork-capture")
        assert [f.symbol for f in findings] == ["LOG"]

    def test_function_local_lock_is_fine(self, tmp_path):
        write(tmp_path, "src/repro/sweep/local.py", """\
            import threading


            def run():
                lock = threading.Lock()
                with lock:
                    return 1
        """)
        assert run(tmp_path, "fork-capture") == []
