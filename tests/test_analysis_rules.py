"""Fixture-project tests for the ``repro.analysis`` rule catalog.

Each test builds a minimal repository under ``tmp_path`` containing
exactly one violation (plus near-miss code that must stay quiet) and
runs a single rule over it via :func:`repro.analysis.run_rules`.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint, run_rules
from repro.errors import ConfigError


def write(root: Path, relpath: str, source: str) -> None:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")


def run(root: Path, rule_id: str):
    findings, ran = run_rules(root, [rule_id])
    assert ran == [rule_id]
    return findings


def symbols(findings):
    return sorted(f.symbol for f in findings)


# ----------------------------------------------------------------------
# module-state
# ----------------------------------------------------------------------

class TestModuleState:
    def test_flags_mutables_not_frozen_peers(self, tmp_path):
        write(tmp_path, "src/repro/accel/bad.py", """\
            CACHE = {}
            SINKS = []
            NAMES = ("a", "b")
            FROZEN = frozenset({"x"})
            __all__ = ["CACHE", "SINKS"]


            class Widget:
                registry = {}
                LIMIT = 4
        """)
        assert symbols(run(tmp_path, "module-state")) == [
            "CACHE", "SINKS", "Widget.registry"]

    def test_constructor_calls_and_comprehensions(self, tmp_path):
        write(tmp_path, "src/repro/hw/bad.py", """\
            from collections import defaultdict, deque

            BY_NAME = defaultdict(list)
            QUEUE = deque()
            DERIVED = [x for x in range(4)]
            PROXY = __import__("types").MappingProxyType({"a": 1})
        """)
        assert symbols(run(tmp_path, "module-state")) == [
            "BY_NAME", "DERIVED", "QUEUE"]

    def test_outside_core_dirs_is_quiet(self, tmp_path):
        write(tmp_path, "src/repro/graph/ok.py", "CACHE = {}\n")
        assert run(tmp_path, "module-state") == []

    def test_descends_into_guarded_blocks(self, tmp_path):
        write(tmp_path, "src/repro/mdp/bad.py", """\
            try:
                SEEN = set()
            except ImportError:
                SEEN = set()
        """)
        assert {f.symbol for f in run(tmp_path, "module-state")} == {"SEEN"}

    def test_function_locals_are_fine(self, tmp_path):
        write(tmp_path, "src/repro/accel/ok.py", """\
            def build():
                cache = {}
                return cache
        """)
        assert run(tmp_path, "module-state") == []

    def test_message_carries_mutation_site_evidence(self, tmp_path):
        write(tmp_path, "src/repro/accel/evidence.py", """\
            CACHE = {}


            def remember(key, value):
                CACHE[key] = value
        """)
        (finding,) = run(tmp_path, "module-state")
        assert finding.symbol == "CACHE"
        assert "mutated by remember() at line 5" in finding.message
        assert "[...] = ..." in finding.message

    def test_unmutated_binding_reads_as_freezable(self, tmp_path):
        write(tmp_path, "src/repro/accel/frozen.py", """\
            TABLE = {"a": 1}


            def lookup(key):
                return TABLE[key]
        """)
        (finding,) = run(tmp_path, "module-state")
        assert "no in-module mutation sites" in finding.message


# ----------------------------------------------------------------------
# set-iteration / id-key / nondeterministic-call
# ----------------------------------------------------------------------

class TestSetIteration:
    def test_flags_order_sinks(self, tmp_path):
        write(tmp_path, "src/repro/sweep/bad.py", """\
            def f(xs):
                for n in {"a", "b"}:
                    pass
                out = list(set(xs))
                joined = ",".join({str(x) for x in xs})
                comp = [n for n in frozenset(xs)]
                return out, joined, comp
        """)
        assert symbols(run(tmp_path, "set-iteration")) == [
            "set-iter@comprehension", "set-iter@for-loop",
            "set-iter@list()", "set-iter@str.join()"]

    def test_sorted_wrapping_is_safe(self, tmp_path):
        write(tmp_path, "src/repro/accel/ok.py", """\
            def f(xs):
                for n in sorted(set(xs)):
                    pass
                return sorted({x + 1 for x in xs})
        """)
        assert run(tmp_path, "set-iteration") == []

    def test_plain_dict_iteration_not_flagged(self, tmp_path):
        write(tmp_path, "src/repro/accel/ok.py", """\
            def f(d):
                return [k for k in d] + list(d.values())
        """)
        assert run(tmp_path, "set-iteration") == []


class TestIdKey:
    def test_flags_id_calls(self, tmp_path):
        write(tmp_path, "src/repro/accel/bad.py", """\
            def key(obj, table):
                table[id(obj)] = obj
        """)
        assert symbols(run(tmp_path, "id-key")) == ["id-call"]

    def test_unrelated_names_quiet(self, tmp_path):
        write(tmp_path, "src/repro/accel/ok.py", """\
            def f(node):
                return node.id(3)
        """)
        assert run(tmp_path, "id-key") == []


class TestNondeterministicCall:
    def test_flags_clock_and_unseeded_rng(self, tmp_path):
        write(tmp_path, "src/repro/accel/bad.py", """\
            import time
            import numpy as np
            from random import random


            def stamp():
                return time.time()


            def draw():
                return np.random.random()


            def seeded(seed):
                return np.random.default_rng(seed)
        """)
        assert symbols(run(tmp_path, "nondeterministic-call")) == [
            "import-random", "np.random.random", "time.time"]

    def test_sweep_layer_clock_is_out_of_scope(self, tmp_path):
        # wall_seconds provenance in the sweep layer is volatile by
        # design; the rule only polices the simulation core
        write(tmp_path, "src/repro/sweep/ok.py", """\
            import time


            def wall():
                return time.perf_counter()
        """)
        assert run(tmp_path, "nondeterministic-call") == []


# ----------------------------------------------------------------------
# exception-hygiene
# ----------------------------------------------------------------------

class TestExceptionHygiene:
    def test_flags_bare_broad_and_foreign_raise(self, tmp_path):
        write(tmp_path, "src/repro/hw/bad.py", """\
            def f():
                try:
                    pass
                except:
                    pass


            def g():
                try:
                    pass
                except Exception:
                    return None


            def h():
                raise ValueError("boom")
        """)
        assert symbols(run(tmp_path, "exception-hygiene")) == [
            "bare-except", "broad-except.Exception", "raise.ValueError"]

    def test_cleanup_reraise_and_library_errors_ok(self, tmp_path):
        write(tmp_path, "src/repro/accel/ok.py", """\
            from repro.errors import SimulationError


            def f(resource):
                try:
                    resource.use()
                except Exception:
                    resource.close()
                    raise


            def g():
                raise SimulationError("invariant broken")


            def h():
                raise NotImplementedError
        """)
        assert run(tmp_path, "exception-hygiene") == []


# ----------------------------------------------------------------------
# cache-key (AST half; the semantic half runs the real config class)
# ----------------------------------------------------------------------

class TestCacheKey:
    def test_missing_axis_is_flagged_tags_exempt(self, tmp_path):
        write(tmp_path, "src/repro/sweep/jobs.py", """\
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class SweepJob:
                graph: str
                engine: str = "batched"
                tags: tuple = ()

                def cache_key(self):
                    return (self.graph,)
        """)
        findings = run(tmp_path, "cache-key")
        assert "SweepJob.engine" in symbols(findings)
        assert "SweepJob.tags" not in symbols(findings)
        assert "SweepJob.graph" not in symbols(findings)

    def test_full_coverage_is_quiet(self, tmp_path):
        write(tmp_path, "src/repro/sweep/jobs.py", """\
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class SweepJob:
                graph: str
                engine: str = "batched"
                tags: tuple = ()

                def cache_key(self):
                    return (self.graph, self.engine)
        """)
        assert [s for s in symbols(run(tmp_path, "cache-key"))
                if s.startswith("SweepJob.")] == []

    def test_coverage_through_helpers_is_quiet(self, tmp_path):
        # the key payload refactored into a helper method and a
        # module-level helper — interprocedural taint must follow both
        write(tmp_path, "src/repro/sweep/jobs.py", """\
            from dataclasses import dataclass


            def _engine_token(job):
                return job.engine


            @dataclass(frozen=True)
            class SweepJob:
                graph: str
                engine: str = "batched"
                tags: tuple = ()

                def _payload(self):
                    return (self.graph,)

                def cache_key(self):
                    return self._payload() + (_engine_token(self),)
        """)
        assert [s for s in symbols(run(tmp_path, "cache-key"))
                if s.startswith("SweepJob.")] == []

    def test_helper_split_still_catches_missing_axis(self, tmp_path):
        # helpers covering some fields must not mask a genuinely
        # unreachable one
        write(tmp_path, "src/repro/sweep/jobs.py", """\
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class SweepJob:
                graph: str
                seed: int = 0
                tags: tuple = ()

                def _payload(self):
                    return (self.graph,)

                def cache_key(self):
                    return self._payload()
        """)
        findings = run(tmp_path, "cache-key")
        assert "SweepJob.seed" in symbols(findings)
        assert "SweepJob.graph" not in symbols(findings)
        assert "call tree" in next(
            f.message for f in findings if f.symbol == "SweepJob.seed")


# ----------------------------------------------------------------------
# telemetry-reset
# ----------------------------------------------------------------------

_REGISTRY = """\
    FFWD_TELEMETRY = {"windows": 0, "events": 0}


    def reset_ffwd_telemetry():
        for key in FFWD_TELEMETRY:
            FFWD_TELEMETRY[key] = 0
        return FFWD_TELEMETRY
"""


class TestTelemetryReset:
    def test_undeclared_key_and_missing_reset(self, tmp_path):
        write(tmp_path, "src/repro/accel/engine/registry.py", _REGISTRY)
        write(tmp_path, "src/repro/accel/engine/batched.py", """\
            from repro.accel.engine.registry import FFWD_TELEMETRY


            def run():
                FFWD_TELEMETRY["windows"] += 1
                FFWD_TELEMETRY["leaked"] = 2
        """)
        assert symbols(run(tmp_path, "telemetry-reset")) == [
            "key.leaked", "missing-reset-call"]

    def test_disciplined_writes_are_quiet(self, tmp_path):
        write(tmp_path, "src/repro/accel/engine/registry.py", _REGISTRY)
        write(tmp_path, "src/repro/accel/engine/batched.py", """\
            from repro.accel.engine import registry


            def run():
                registry.reset_ffwd_telemetry()
                registry.FFWD_TELEMETRY["windows"] += 1
                registry.FFWD_TELEMETRY["events"] += 3
        """)
        assert run(tmp_path, "telemetry-reset") == []


# ----------------------------------------------------------------------
# engine-compat / engine-seam
# ----------------------------------------------------------------------

_SEAM_OK = {
    "src/repro/accel/engine/frontends.py": """\
        class Front:
            kind = "front"

            def tick(self):
                pass

            def arb_key(self):
                pass

            def restore_arb(self, key):
                pass

            def counter_sites(self):
                pass
    """,
    "src/repro/accel/engine/edgestage.py": """\
        class Edge:
            kind = "edge"

            def tick(self):
                pass

            def arb_key(self):
                pass

            def restore_arb(self, key):
                pass

            def counter_sites(self):
                pass
    """,
    "src/repro/accel/engine/propagation.py": """\
        class Net:
            kind = "propagation"

            def arb_key(self):
                pass

            def restore_arb(self, key):
                pass

            def counter_sites(self):
                pass

            def reduce_sites(self):
                pass
    """,
}


class TestEngineCompat:
    def test_missing_export_and_phantom_all_entry(self, tmp_path):
        write(tmp_path, "src/repro/accel/engine/__init__.py", """\
            ENGINES = ("reference", "batched")
            __all__ = ["ENGINES", "ghost"]
        """)
        found = symbols(run(tmp_path, "engine-compat"))
        assert "export.BatchedEngine" in found
        assert "export.FFWD_TELEMETRY" in found
        assert "all.ghost" in found
        assert "export.ENGINES" not in found

    def test_seam_method_missing(self, tmp_path):
        for relpath, source in _SEAM_OK.items():
            write(tmp_path, relpath, source)
        write(tmp_path, "src/repro/accel/engine/frontends.py", """\
            class Front:
                kind = "front"

                def arb_key(self):
                    pass

                def restore_arb(self, key):
                    pass

                def counter_sites(self):
                    pass
        """)
        assert symbols(run(tmp_path, "engine-seam")) == ["Front.tick"]

    def test_untagged_helper_classes_ignored(self, tmp_path):
        for relpath, source in _SEAM_OK.items():
            write(tmp_path, relpath, source)
        write(tmp_path, "src/repro/accel/engine/edgestage.py",
              _SEAM_OK["src/repro/accel/engine/edgestage.py"] + """\

        class Helper:
            pass
        """)
        assert run(tmp_path, "engine-seam") == []


class TestEngineRegistry:
    """Registering an engine is a three-point contract (PR 7)."""

    REGISTRY = "src/repro/accel/engine/registry.py"

    def _write_registry(self, tmp_path, engines, equivalence, branches):
        lines = [
            "import types",
            "",
            f"ENGINES = {engines!r}",
            f"_ENGINE_EQUIVALENCE = types.MappingProxyType({equivalence!r})",
            "",
            "def make_engine(name, sim):",
        ]
        for branch in branches:
            lines.append(f'    if name == "{branch}":')
            lines.append(f'        return "{branch}-engine"')
        lines.append('    return "fallback-engine"')
        write(tmp_path, self.REGISTRY, "\n".join(lines) + "\n")

    def test_consistent_registry_is_quiet(self, tmp_path):
        self._write_registry(
            tmp_path, ("reference", "batched", "soa"),
            {"reference": "v1", "batched": "v1", "soa": "v1"},
            ["reference", "soa"])
        assert run(tmp_path, "engine-registry") == []

    def test_engine_without_equivalence_entry(self, tmp_path):
        self._write_registry(
            tmp_path, ("reference", "batched", "soa"),
            {"reference": "v1", "batched": "v1"},
            ["reference", "soa"])
        assert symbols(run(tmp_path, "engine-registry")) == ["no-class.soa"]

    def test_stale_equivalence_entry(self, tmp_path):
        self._write_registry(
            tmp_path, ("reference", "batched"),
            {"reference": "v1", "batched": "v1", "warp": "v1"},
            ["reference"])
        assert symbols(run(tmp_path, "engine-registry")) == [
            "stale-class.warp"]

    def test_two_engines_on_the_fallback_branch(self, tmp_path):
        self._write_registry(
            tmp_path, ("reference", "batched", "soa"),
            {"reference": "v1", "batched": "v1", "soa": "v1"},
            ["reference"])
        found = symbols(run(tmp_path, "engine-registry"))
        assert found == ["fallback.batched.soa"]

    def test_missing_registry_module(self, tmp_path):
        write(tmp_path, "src/repro/accel/engine/__init__.py", "")
        assert symbols(run(tmp_path, "engine-registry")) == [
            "missing-registry"]


# ----------------------------------------------------------------------
# bench-history (rule wrapper over repro.analysis.history)
# ----------------------------------------------------------------------

def _record(**overrides):
    base = {
        "bench": "fig8_cold_sweep", "utc": "2026-07-30T00:00:00+00:00",
        "datasets": ["VT"], "algorithms": ["BFS"], "scales": {"VT": 1.0},
        "jobs": 6, "reference_seconds": 10.0, "batched_seconds": 5.0,
        "speedup": 2.0, "median_job_speedup": 2.1, "stats_identical": True,
        "engine_equivalence_class": "cycle-exact-v1",
        "python": "3.11.7", "machine": "x86_64",
    }
    base.update(overrides)
    return base


class TestBenchHistoryRule:
    def _write_history(self, root, records):
        import json
        path = root / "benchmarks/results/bench_history.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("".join(json.dumps(r) + "\n" for r in records),
                        encoding="utf-8")

    def test_contract_violation_is_error(self, tmp_path):
        self._write_history(tmp_path, [_record(stats_identical=False)])
        findings = run(tmp_path, "bench-history")
        assert [f.severity for f in findings] == ["error"]
        assert "stats_identical" in findings[0].message

    def test_trajectory_regression_is_warning(self, tmp_path):
        self._write_history(tmp_path, [_record(speedup=2.5),
                                       _record(speedup=1.0)])
        findings = run(tmp_path, "bench-history")
        assert [f.severity for f in findings] == ["warning"]
        assert findings[0].symbol == "trajectory"

    def test_missing_history_is_quiet(self, tmp_path):
        assert run(tmp_path, "bench-history") == []


# ----------------------------------------------------------------------
# runner behaviour: inline allows, syntax errors, unknown rules
# ----------------------------------------------------------------------

class TestLintDocs:
    def test_fixture_without_docs_is_silent(self, tmp_path):
        write(tmp_path, "src/repro/ok.py", "X = 1\n")
        assert run(tmp_path, "lint-docs") == []

    def test_missing_markers_is_one_finding(self, tmp_path):
        write(tmp_path, "docs/linting.md", "# lint\n\nno table here\n")
        assert [f.symbol for f in run(tmp_path, "lint-docs")] == \
            ["catalog-markers"]

    def test_stale_table_is_drift(self, tmp_path):
        from repro.analysis.registry import CATALOG_BEGIN, CATALOG_END
        write(tmp_path, "docs/linting.md",
              f"# lint\n\n{CATALOG_BEGIN}\nold table\n{CATALOG_END}\n")
        findings = run(tmp_path, "lint-docs")
        assert [f.symbol for f in findings] == ["catalog-drift"]
        assert "repro lint --catalog" in findings[0].message

    def test_current_table_is_quiet(self, tmp_path):
        from repro.analysis.registry import (
            CATALOG_BEGIN,
            CATALOG_END,
            rule_catalog_markdown,
        )
        write(tmp_path, "docs/linting.md",
              f"# lint\n\n{CATALOG_BEGIN}\n{rule_catalog_markdown()}\n"
              f"{CATALOG_END}\n")
        assert run(tmp_path, "lint-docs") == []

    def test_catalog_names_every_rule(self):
        from repro.analysis.registry import all_rules, rule_catalog_markdown
        table = rule_catalog_markdown()
        for rule_id in all_rules():
            assert f"`{rule_id}`" in table


class TestRunner:
    def test_inline_allow_suppresses(self, tmp_path):
        write(tmp_path, "src/repro/accel/mod.py", """\
            CACHE = {}  # lint: allow=module-state
        """)
        report = lint(tmp_path, rule_ids=["module-state"])
        assert report.findings == []
        assert report.suppressed_inline == 1
        assert report.exit_code() == 0

    def test_allow_comment_on_line_above(self, tmp_path):
        write(tmp_path, "src/repro/accel/mod.py", """\
            # lint: allow=module-state
            CACHE = {}
        """)
        report = lint(tmp_path, rule_ids=["module-state"])
        assert report.findings == []
        assert report.suppressed_inline == 1

    def test_allow_names_only_its_rule(self, tmp_path):
        write(tmp_path, "src/repro/accel/mod.py", """\
            CACHE = {}  # lint: allow=set-iteration
        """)
        report = lint(tmp_path, rule_ids=["module-state"])
        assert len(report.findings) == 1

    def test_syntax_error_becomes_finding(self, tmp_path):
        write(tmp_path, "src/repro/accel/broken.py", "def f(:\n")
        findings, _ = run_rules(tmp_path, ["module-state"])
        assert [f.rule for f in findings] == ["syntax"]
        assert findings[0].severity == "error"

    def test_unknown_rule_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            run_rules(tmp_path, ["no-such-rule"])
