"""Unit tests for the perf probe's pure record-building and pairing
logic — no timing runs involved (the probe's timed path is exercised by
``scripts/ci.sh perf``)."""

import importlib.util
import os
import sys

import pytest

_SCRIPT = os.path.join(os.path.dirname(__file__), "..", "scripts",
                       "perf_probe.py")
_spec = importlib.util.spec_from_file_location("perf_probe", _SCRIPT)
perf_probe = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("perf_probe", perf_probe)
_spec.loader.exec_module(perf_probe)


def _pair(ref=2.0, bat=1.0, identical=True, job="BFS/VT/HiGraph"):
    stats_ref = {"scatter_cycles": 10, "edges_processed": 5}
    stats_bat = dict(stats_ref) if identical else {"scatter_cycles": 11,
                                                  "edges_processed": 5}
    return perf_probe.pair_result(
        job,
        {"reference": ref, "batched": bat},
        {"reference": stats_ref, "batched": stats_bat})


class TestPairResult:
    def test_speedup_and_identity(self):
        pair = _pair(ref=3.0, bat=1.5)
        assert pair["speedup"] == pytest.approx(2.0)
        assert pair["stats_identical"] is True
        assert pair["job"] == "BFS/VT/HiGraph"

    def test_divergent_stats_flagged(self):
        assert _pair(identical=False)["stats_identical"] is False


class TestMedianJobSpeedup:
    def test_odd_count_is_exact_median(self):
        pairs = [_pair(ref=r, bat=1.0) for r in (1.0, 9.0, 2.0)]
        assert perf_probe.median_job_speedup(pairs) == pytest.approx(2.0)

    def test_robust_to_one_outlier(self):
        pairs = [_pair(ref=r, bat=1.0) for r in (2.0, 2.1, 2.2, 2.3, 50.0)]
        assert perf_probe.median_job_speedup(pairs) == pytest.approx(2.2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            perf_probe.median_job_speedup([])


class TestBuildRecord:
    def _record(self, pairs, **kw):
        kw.setdefault("datasets", ["VT"])
        kw.setdefault("algorithms", ["BFS"])
        kw.setdefault("scales", {"VT": 1.0})
        kw.setdefault("equivalence_class", "cycle-exact-v1")
        kw.setdefault("utc", "2026-07-30T00:00:00+00:00")
        kw.setdefault("python_version", "3.11.7")
        kw.setdefault("machine", "x86_64")
        return perf_probe.build_record(pairs, **kw)

    def test_totals_and_speedup(self):
        record = self._record([_pair(ref=2.0, bat=1.0),
                               _pair(ref=4.0, bat=1.0)])
        assert record["jobs"] == 2
        assert record["reference_seconds"] == pytest.approx(6.0)
        assert record["batched_seconds"] == pytest.approx(2.0)
        assert record["speedup"] == pytest.approx(3.0)
        assert record["median_job_speedup"] == pytest.approx(4.0)
        assert record["bench"] == "fig8_cold_sweep"
        assert record["stats_identical"] is True

    def test_single_divergent_pair_poisons_the_record(self):
        record = self._record([_pair(), _pair(identical=False), _pair()])
        assert record["stats_identical"] is False

    def test_ffwd_telemetry_embedded(self):
        ffwd = {"windows": 3, "cycles_fast_forwarded": 1000,
                "cycles_simulated": 5000, "events": 250}
        record = self._record([_pair()], ffwd=ffwd)
        assert record["ffwd"] == ffwd

    def test_ffwd_optional(self):
        assert "ffwd" not in self._record([_pair()])

    def test_injected_provenance(self):
        record = self._record([_pair()])
        assert record["utc"] == "2026-07-30T00:00:00+00:00"
        assert record["python"] == "3.11.7"
        assert record["machine"] == "x86_64"

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            self._record([])

    def test_bench_name_override(self):
        record = self._record([_pair()], bench="pr10_cold_sweep")
        assert record["bench"] == "pr10_cold_sweep"


class TestPr10Fields:
    def _soa_pair(self, ref=10.0, bat=5.0, soa=1.0):
        stats = {"scatter_cycles": 10}
        return perf_probe.pair_result(
            "PR/VT/HiGraph",
            {"reference": ref, "batched": bat, "soa": soa},
            {"reference": stats, "batched": dict(stats),
             "soa": dict(stats)})

    def test_derived_from_soa_timings(self):
        record = perf_probe.build_record(
            [self._soa_pair()], datasets=["VT"], algorithms=["PRx10"],
            scales={"VT": 1.0}, equivalence_class="cycle-exact-v1",
            utc="2026-08-08T00:00:00+00:00", python_version="3.11.7",
            machine="x86_64", bench="pr10_cold_sweep")
        fields = perf_probe.pr10_fields(record)
        assert fields["pr10_seconds"] == record["soa_seconds"]
        assert fields["speedup_soa_pr10"] == pytest.approx(10.0)

    def test_empty_without_soa_timings(self):
        record = perf_probe.build_record(
            [_pair()], datasets=["VT"], algorithms=["PRx10"],
            scales={"VT": 1.0}, equivalence_class="cycle-exact-v1",
            utc="2026-08-08T00:00:00+00:00", python_version="3.11.7",
            machine="x86_64", bench="pr10_cold_sweep")
        assert perf_probe.pr10_fields(record) == {}


class TestResolveOutPath:
    def test_default_creates_results_dir(self, tmp_path):
        default = tmp_path / "benchmarks" / "results" / "bench_history.jsonl"
        out = perf_probe.resolve_out_path(str(default), default=str(default))
        assert out == str(default)
        assert default.parent.is_dir()

    def test_explicit_existing_parent_ok(self, tmp_path):
        out = tmp_path / "history.jsonl"
        resolved = perf_probe.resolve_out_path(
            str(out), default=os.path.join(str(tmp_path), "elsewhere.jsonl"))
        assert resolved == str(out)

    def test_explicit_missing_parent_is_clear_error(self, tmp_path):
        out = tmp_path / "no" / "such" / "dir" / "history.jsonl"
        with pytest.raises(SystemExit) as excinfo:
            perf_probe.resolve_out_path(
                str(out), default=os.path.join(str(tmp_path), "d.jsonl"))
        message = str(excinfo.value)
        assert "parent directory does not exist" in message
        assert "no" in message

    def test_missing_parent_via_cli_has_no_traceback(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            perf_probe.main(["--out",
                             str(tmp_path / "missing" / "h.jsonl")])
