"""Unit tests for the CSR graph container (paper Fig. 1 structures)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import CSRGraph, chain, star


def small_graph():
    # 0 -> 1 (w=3), 0 -> 2 (w=5), 2 -> 1 (w=1)
    return CSRGraph.from_edges(3, [(0, 1), (0, 2), (2, 1)], [3, 5, 1], name="small")


class TestConstruction:
    def test_from_edges_counts(self):
        g = small_graph()
        assert g.num_vertices == 3
        assert g.num_edges == 3

    def test_offsets_encode_degrees(self):
        g = small_graph()
        assert list(g.offsets) == [0, 2, 2, 3]

    def test_default_weights_are_ones(self):
        g = CSRGraph.from_edges(2, [(0, 1)])
        assert list(g.weights) == [1]

    def test_edge_order_within_vertex_preserved(self):
        g = CSRGraph.from_edges(4, [(1, 3), (1, 0), (1, 2)], [7, 8, 9])
        assert list(g.neighbors(1)) == [3, 0, 2]
        assert list(g.out_weights(1)) == [7, 8, 9]

    def test_unsorted_sources_are_sorted(self):
        g = CSRGraph.from_edges(3, [(2, 0), (0, 1), (1, 2)])
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(2)) == [0]

    def test_empty_graph(self):
        g = CSRGraph.from_edges(0, [])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.mean_degree == 0.0

    def test_vertices_without_edges(self):
        g = CSRGraph.from_edges(5, [(0, 4)])
        assert g.out_degree(1) == 0
        assert g.out_degree(0) == 1

    def test_dedup_keeps_first(self):
        g = CSRGraph.from_edges(2, [(0, 1), (0, 1)], [5, 9], dedup=True)
        assert g.num_edges == 1
        assert list(g.weights) == [5]

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges(2, np.zeros((2, 3), dtype=np.int64))

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph.from_edges(2, [(0, 1)], [1, 2])


class TestValidation:
    def test_nonzero_first_offset_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([1, 2]), np.array([0, 0]), np.array([1, 1]))

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 0]), np.array([1, 1]))

    def test_offset_edge_count_mismatch_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1]), np.array([0, 0]), np.array([1, 1]))

    def test_destination_out_of_range_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1]), np.array([5]), np.array([1]))

    def test_negative_destination_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1]), np.array([-1]), np.array([1]))


class TestQueries:
    def test_edge_slice_matches_paper_off_noff(self):
        g = small_graph()
        assert g.edge_slice(0) == (0, 2)
        assert g.edge_slice(1) == (2, 2)
        assert g.edge_slice(2) == (2, 3)

    def test_out_degree_array(self):
        g = small_graph()
        assert list(g.out_degree()) == [2, 0, 1]

    def test_edges_iterator(self):
        g = small_graph()
        assert list(g.edges()) == [(0, 1, 3), (0, 2, 5), (2, 1, 1)]

    def test_edge_sources_expansion(self):
        g = small_graph()
        assert list(g.edge_sources()) == [0, 0, 2]

    def test_mean_degree(self):
        assert chain(5).mean_degree == pytest.approx(4 / 5)


class TestTransforms:
    def test_reverse_flips_edges(self):
        g = small_graph()
        r = g.reverse()
        assert list(r.edges()) == [(1, 0, 3), (1, 2, 1), (2, 0, 5)]

    def test_reverse_twice_is_identity_on_edge_set(self):
        g = star(4)
        rr = g.reverse().reverse()
        assert sorted(g.edges()) == sorted(rr.edges())

    def test_with_weights(self):
        g = small_graph()
        g2 = g.with_weights([9, 9, 9])
        assert list(g2.weights) == [9, 9, 9]
        assert list(g.weights) == [3, 5, 1]  # original untouched

    def test_subgraph_by_destination(self):
        g = small_graph()
        sub = g.subgraph_by_destination(1, 2)  # only edges into vertex 1
        assert sorted(sub.edges()) == [(0, 1, 3), (2, 1, 1)]
        assert sub.num_vertices == g.num_vertices  # ids preserved

    def test_equality(self):
        assert small_graph() == small_graph()
        assert small_graph() != chain(3)


class TestMemoryFootprint:
    def test_19_bit_quantization(self):
        g = small_graph()
        fp = g.memory_footprint()
        # 3 edges * 19 bits = 57 bits -> 8 bytes
        assert fp.edge_bytes == 8
        assert fp.edge_info_bytes == 8

    def test_total_is_sum(self):
        fp = small_graph().memory_footprint()
        assert fp.total_bytes == (fp.offset_bytes + fp.edge_bytes + fp.edge_info_bytes
                                  + fp.property_bytes + fp.active_and_tproperty_bytes)

    def test_fits_budget(self):
        fp = small_graph().memory_footprint()
        assert fp.fits(10**6)
        assert not fp.fits(1)

    def test_r14_layout_scale(self):
        """Full R14 (1M edges, 19-bit entries) must fit HiGraph's 16 MB
        on-chip memory — the premise of the paper's Fig. 7 layout."""
        from repro.graph import load
        fp = load("R14").memory_footprint()
        assert fp.fits(16 * 2**20)
