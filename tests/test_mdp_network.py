"""Cycle-level MDP-network tests: routing, conservation, throughput."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mdp import MdpNetworkSim


def run_until_drained(net, sink_ready=None, max_cycles=10_000):
    delivered = []
    ready = sink_ready or [True] * net.channels
    cycles = 0
    while not net.drained:
        delivered.extend(net.tick(ready))
        cycles += 1
        if cycles > max_cycles:
            raise AssertionError("network did not drain")
    return delivered


class TestBasics:
    def test_single_datum_routed_to_destination(self):
        net = MdpNetworkSim(4, 2, fifo_depth=4)
        assert net.offer(0, 3, "x")
        delivered = run_until_drained(net)
        assert delivered == [(3, "x")]

    def test_latency_equals_stage_count(self):
        """Minimum traversal = one cycle per stage: the latency traded
        for throughput (§2.2 Opportunity)."""
        for n in (4, 8, 16):
            net = MdpNetworkSim(n, 2, fifo_depth=4)
            net.offer(0, n - 1, "x")
            cycles = 0
            while True:
                cycles += 1
                if net.tick([True] * n):
                    break
            assert cycles == net.num_stages

    def test_all_pairs_delivery(self):
        n = 8
        for src in range(n):
            net = MdpNetworkSim(n, 2, fifo_depth=4)
            for dest in range(n):
                net.offer(src, dest, (src, dest))
                got = run_until_drained(net)
                assert got == [(dest, (src, dest))]

    def test_invalid_dest_rejected(self):
        net = MdpNetworkSim(4, 2, fifo_depth=4)
        with pytest.raises(ConfigError):
            net.offer(0, 4, "x")

    def test_depth_below_radix_rejected(self):
        with pytest.raises(ConfigError):
            MdpNetworkSim(4, 2, fifo_depth=1)

    def test_backpressure_no_loss_when_sink_blocked(self):
        net = MdpNetworkSim(4, 2, fifo_depth=4)
        net.offer(0, 1, "a")
        for _ in range(10):
            assert net.tick([False] * 4) == []
        assert net.occupancy == 1
        assert run_until_drained(net) == [(1, "a")]

    def test_offer_rejected_when_stage0_full(self):
        net = MdpNetworkSim(4, 2, fifo_depth=2)
        # fill stage-0 FIFO at position 0 (dest 0 from channel 0)
        assert net.offer(0, 0, 1)
        # depth 2, radix 2: one resident datum leaves free=1 < radix
        assert not net.offer(0, 0, 2)
        assert net.rejected_offers == 1

    def test_can_offer_matches_offer(self):
        net = MdpNetworkSim(4, 2, fifo_depth=2)
        assert net.can_offer(0, 0)
        net.offer(0, 0, 1)
        assert not net.can_offer(0, 0)

    def test_per_flow_order_preserved(self):
        net = MdpNetworkSim(8, 2, fifo_depth=16)
        delivered = []
        for i in range(10):
            net.offer(3, 5, i)
            delivered.extend(net.tick([True] * 8))
        delivered.extend(run_until_drained(net))
        assert [p for _, p in delivered] == list(range(10))

    @given(seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_deliver_advance_offer_protocol_keeps_flow_order(self, seed):
        """Regression for the pipeline's explicit per-cycle protocol
        (deliver -> advance -> offer, exactly as the accelerator drives
        it, with flaky sinks): for every (input, dest) pair the payloads
        must arrive in offer order, even while flows from the same input
        interleave different destinations and stall on backpressure."""
        n = 8
        rng = np.random.default_rng(seed)
        net = MdpNetworkSim(n, 2, fifo_depth=4)
        offered: dict[tuple[int, int], list[int]] = {}
        received: dict[tuple[int, int], list[int]] = {}
        next_payload = 0
        pending = 0
        for cycle in range(600):
            sink_ready = list(rng.random(n) < 0.7)
            for dest, (src, _, payload) in net.deliver(
                    sink_ready=[bool(r) for r in sink_ready]):
                received.setdefault((src, dest), []).append(payload)
                pending -= 1
            net.advance()
            for src in range(n):
                if rng.random() < 0.8:
                    dest = int(rng.integers(0, n))
                    if net.offer(src, dest, (src, dest, next_payload)):
                        offered.setdefault((src, dest), []).append(next_payload)
                        next_payload += 1
                        pending += 1
        for dest, (src, _, payload) in run_until_drained(net):
            received.setdefault((src, dest), []).append(payload)
            pending -= 1
        assert pending == 0
        assert received == offered


class TestConservation:
    @given(seed=st.integers(0, 200), n_log=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_no_loss_no_duplication_random_traffic(self, seed, n_log):
        n = 2 ** n_log
        rng = np.random.default_rng(seed)
        net = MdpNetworkSim(n, 2, fifo_depth=8)
        sent, received = [], []
        uid = 0
        for _ in range(60):
            received.extend(net.tick([True] * n))
            for ch in range(n):
                if rng.random() < 0.8:
                    dest = int(rng.integers(0, n))
                    if net.offer(ch, dest, (dest, uid)):
                        sent.append((dest, (dest, uid)))
                        uid += 1
        received.extend(run_until_drained(net))
        assert sorted(received) == sorted(sent)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_radix4_conservation(self, seed):
        n = 16
        rng = np.random.default_rng(seed)
        net = MdpNetworkSim(n, 4, fifo_depth=8)
        sent = []
        received = []
        for _ in range(40):
            received.extend(net.tick([True] * n))
            ch = int(rng.integers(0, n))
            dest = int(rng.integers(0, n))
            if net.offer(ch, dest, dest):
                sent.append((dest, dest))
        received.extend(run_until_drained(net))
        assert sorted(received) == sorted(sent)

    def test_intermittent_sink_conservation(self):
        n = 8
        rng = np.random.default_rng(7)
        net = MdpNetworkSim(n, 2, fifo_depth=8)
        sent, received = [], []
        for cycle in range(200):
            ready = [bool(rng.random() < 0.5) for _ in range(n)]
            received.extend(net.tick(ready))
            for ch in range(n):
                dest = int(rng.integers(0, n))
                if net.offer(ch, dest, (dest, cycle, ch)):
                    sent.append((dest, (dest, cycle, ch)))
        received.extend(run_until_drained(net))
        assert sorted(received) == sorted(sent)


class TestThroughput:
    def _saturate(self, net, cycles, rng):
        """Keep all inputs busy with uniform random destinations."""
        n = net.channels
        pending = [None] * n
        delivered = 0
        for _ in range(cycles):
            delivered += len(net.tick([True] * n))
            for ch in range(n):
                if pending[ch] is None:
                    pending[ch] = int(rng.integers(0, n))
                if net.offer(ch, pending[ch], None):
                    pending[ch] = None
        return delivered / (cycles * n)

    def test_uniform_traffic_near_line_rate(self):
        """§3.1: deterministic multi-stage propagation avoids the
        crossbar's arbitration losses — uniform traffic flows at close
        to one datum per channel per cycle."""
        rng = np.random.default_rng(1)
        net = MdpNetworkSim(16, 2, fifo_depth=32)
        rate = self._saturate(net, 1500, rng)
        assert rate > 0.9

    def test_beats_crossbar_on_uniform_traffic(self):
        from repro.hw import ArbitratedCrossbar
        n, cycles = 16, 1500
        rng = np.random.default_rng(2)
        net_rate = self._saturate(MdpNetworkSim(n, 2, fifo_depth=32), cycles, rng)
        xbar = ArbitratedCrossbar(n, n, fifo_depth=32)
        delivered = 0
        rng = np.random.default_rng(2)
        for _ in range(cycles):
            for i in range(n):
                while not xbar.inputs[i].full:
                    xbar.offer(i, int(rng.integers(0, n)), None)
            delivered += len(xbar.tick([1] * n))
        xbar_rate = delivered / (cycles * n)
        assert net_rate > xbar_rate + 0.15   # decisive margin

    def test_hotspot_bounded_by_single_output(self):
        """All traffic to one destination drains at 1/cycle — the
        fundamental bank-port bound no interconnect can beat."""
        n = 8
        net = MdpNetworkSim(n, 2, fifo_depth=8)
        rng = np.random.default_rng(3)
        delivered = 0
        cycles = 300
        for _ in range(cycles):
            delivered += len(net.tick([True] * n))
            for ch in range(n):
                net.offer(ch, 0, None)
        assert delivered <= cycles
        assert delivered > 0.9 * cycles

    def test_stall_statistics_accumulate(self):
        net = MdpNetworkSim(4, 2, fifo_depth=2)
        rng = np.random.default_rng(4)
        for _ in range(100):
            net.tick([False] * 4)   # sinks never accept
            for ch in range(4):
                net.offer(ch, int(rng.integers(0, 4)), None)
        assert net.stall_events > 0
        assert net.rejected_offers > 0
