"""Tests for accelerator configurations (Table 1) and the Fig. 7 layout."""

import pytest

from repro.accel import (
    AcceleratorConfig,
    ablation,
    fig7_layout,
    graphdyns,
    higraph,
    higraph_mini,
)
from repro.errors import ConfigError


class TestTable1Presets:
    def test_higraph_matches_table1(self):
        cfg = higraph()
        assert cfg.front_channels == 32
        assert cfg.back_channels == 32
        assert cfg.onchip_memory_bytes == 16 * 2**20
        assert cfg.frequency_ghz() == 1.0

    def test_higraph_mini_matches_table1(self):
        cfg = higraph_mini()
        assert cfg.front_channels == 4
        assert cfg.back_channels == 32
        assert cfg.frequency_ghz() == 1.0

    def test_graphdyns_matches_table1(self):
        cfg = graphdyns()
        assert cfg.front_channels == 4
        assert cfg.back_channels == 32
        assert cfg.onchip_memory_bytes == 32 * 2**20
        assert cfg.offset_site == "crossbar"
        assert cfg.edge_site == "central"
        assert cfg.propagation_site == "crossbar"
        assert cfg.frequency_ghz() == pytest.approx(1.0, abs=1e-9)

    def test_all_presets_run_at_1ghz(self):
        """Table 1: every configuration is clocked at 1 GHz."""
        for cfg in (higraph(), higraph_mini(), graphdyns()):
            assert cfg.frequency_ghz() == pytest.approx(1.0, abs=1e-9)

    def test_ideal_throughput_32_gteps(self):
        """Fig. 9: 'The ideal throughput is 32 GTEPS.'"""
        assert higraph().ideal_gteps() == pytest.approx(32.0)

    def test_graphdyns_beyond_64_channels_loses_frequency(self):
        """Fig. 11: GraphDynS 'does not support more than 64 channels
        due to significant frequency decline'."""
        assert graphdyns(back_channels=64).frequency_ghz() < 0.8
        assert graphdyns(back_channels=128).frequency_ghz() < 0.55

    def test_higraph_scales_to_256_channels_at_1ghz(self):
        """§5.3: HiGraph's critical path stays under 1 ns up to 256
        channels (0.93 ns -> 0.97 ns)."""
        for ch in (32, 64, 128, 256):
            assert higraph(back_channels=ch).frequency_ghz() == 1.0


class TestAblationConfigs:
    def test_baseline_has_no_mdp(self):
        cfg = ablation()
        assert cfg.name == "Baseline"
        assert (cfg.offset_site, cfg.edge_site, cfg.propagation_site) == (
            "crossbar", "central", "crossbar")

    def test_opt_flags_rename_and_rewire(self):
        cfg = ablation(opt_o=True)
        assert cfg.name == "OPT-O"
        assert cfg.offset_site == "mdp"
        cfg = ablation(opt_o=True, opt_e=True)
        assert cfg.name == "OPT-O+E"
        assert cfg.edge_site == "mdp"
        cfg = ablation(opt_o=True, opt_e=True, opt_d=True)
        assert cfg.name == "OPT-O+E+D"
        assert cfg.propagation_site == "mdp"

    def test_full_ablation_equals_higraph_sites(self):
        full = ablation(opt_o=True, opt_e=True, opt_d=True)
        hi = higraph()
        assert (full.offset_site, full.edge_site, full.propagation_site) == (
            hi.offset_site, hi.edge_site, hi.propagation_site)


class TestValidation:
    def test_bad_site_rejected(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(offset_site="magic")

    def test_mdp_site_requires_power_of_radix(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(front_channels=12, offset_site="mdp")

    def test_crossbar_site_allows_any_count(self):
        AcceleratorConfig(front_channels=12, offset_site="crossbar",
                          back_channels=32)

    def test_dispatcher_group_must_divide_channels(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(back_channels=32, dispatcher_group=5)

    def test_fifo_depth_at_least_radix(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(fifo_depth=1)

    def test_radix4_requires_power_of_4(self):
        AcceleratorConfig(front_channels=16, back_channels=16, radix=4,
                          dispatcher_group=4)
        with pytest.raises(ConfigError):
            AcceleratorConfig(front_channels=32, back_channels=32, radix=4)

    def test_with_updates(self):
        cfg = higraph().with_(fifo_depth=64)
        assert cfg.fifo_depth == 64
        assert cfg.name == "HiGraph"


class TestFieldValidation:
    def test_zero_dispatcher_group_rejected(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(dispatcher_group=0)

    def test_zero_central_issue_limit_rejected(self):
        """0 used to silently mean "unset" via ``or``; now it is an error."""
        with pytest.raises(ConfigError):
            AcceleratorConfig(central_issue_limit=0)

    def test_none_central_issue_limit_defaults_to_front_channels(self):
        cfg = AcceleratorConfig(central_issue_limit=None)
        assert cfg.issue_limit == cfg.front_channels

    def test_nonpositive_memory_rejected(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(onchip_memory_bytes=0)

    @pytest.mark.parametrize("ghz", [0.0, -1.0, float("inf"), float("nan")])
    def test_degenerate_target_frequency_rejected(self, ghz):
        with pytest.raises(ConfigError):
            AcceleratorConfig(target_frequency_ghz=ghz)


class TestHashingEquality:
    def test_equal_configs_hash_equal(self):
        assert higraph() == higraph()
        assert hash(higraph()) == hash(higraph())
        assert higraph().config_hash() == higraph().config_hash()

    def test_field_change_changes_hash(self):
        base = higraph()
        for variant in (base.with_(fifo_depth=80),
                        base.with_(radix=4, front_channels=16,
                                   back_channels=16, dispatcher_group=4),
                        base.with_(vertex_combining=False)):
            assert variant != base
            assert variant.config_hash() != base.config_hash()

    def test_name_participates_in_hash(self):
        """Cached stats carry config_name, so a rename is a new identity."""
        assert higraph().with_(name="other").config_hash() != higraph().config_hash()

    def test_config_hash_is_stable_across_processes(self):
        """sha256 over canonical JSON, not salted builtin hash()."""
        import subprocess
        import sys
        code = ("from repro.accel import higraph; "
                "print(higraph().config_hash())")
        out = subprocess.run([sys.executable, "-c", code], text=True,
                             capture_output=True, check=True).stdout.strip()
        assert out == higraph().config_hash()

    def test_to_dict_round_trips(self):
        cfg = graphdyns(fifo_depth=42)
        assert AcceleratorConfig(**cfg.to_dict()) == cfg


class TestFig7Layout:
    def test_arrays_match_paper_megabytes(self):
        rows = {r["array"]: r for r in fig7_layout()}
        assert rows["Edge Array"]["model_mb"] == pytest.approx(9.5, abs=0.05)
        assert rows["Edge Info Array"]["model_mb"] == pytest.approx(2.0, abs=0.05)
        assert rows["Offset Array"]["model_mb"] == pytest.approx(1.4, abs=0.05)
        assert rows["Property Array"]["model_mb"] == pytest.approx(1.2, abs=0.05)
        assert rows["ActiveVertex + tProperty Array"]["model_mb"] == pytest.approx(
            2.4, abs=0.05)

    def test_total_fits_16mb(self):
        total = sum(r["model_mb"] for r in fig7_layout())
        assert total <= 16.7   # paper rounds the same way
