"""Cache ownership: claim files, stale takeover, the generation counter."""

import os
import threading
import time

import pytest

from repro.sweep import cache as cache_mod
from repro.sweep.atomic import exclusive_create
from repro.sweep.cache import ResultCache, code_generation, code_version


class TestExclusiveCreate:
    def test_first_writer_wins(self, tmp_path):
        target = tmp_path / "x" / "claim"
        assert exclusive_create(target, "one") is True
        assert exclusive_create(target, "two") is False
        assert target.read_text() == "one"

    def test_concurrent_creators_yield_one_winner(self, tmp_path):
        target = tmp_path / "claim"
        wins = []
        barrier = threading.Barrier(8)

        def attempt(i):
            barrier.wait()
            if exclusive_create(target, f"t{i}"):
                wins.append(i)

        threads = [threading.Thread(target=attempt, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1
        assert target.read_text() == f"t{wins[0]}"


class TestClaims:
    def test_claim_release_cycle(self, tmp_path):
        cache = ResultCache(tmp_path)
        claim = cache.claim("deadbeef")
        assert claim is not None
        assert claim.key == "deadbeef"
        assert os.path.exists(claim.path)
        assert cache.claim_owner("deadbeef") == claim.owner
        cache.release(claim)
        assert cache.claim_owner("deadbeef") is None

    def test_contended_key_has_one_owner(self, tmp_path):
        # two daemons sharing a cache dir race for the same entry; the
        # loser gets None and must wait, never a second simulation slot
        a, b = ResultCache(tmp_path), ResultCache(tmp_path)
        claim = a.claim("cafe01", owner="daemon-a")
        assert claim is not None
        assert b.claim("cafe01", owner="daemon-b") is None
        a.release(claim)
        taken = b.claim("cafe01", owner="daemon-b")
        assert taken is not None and taken.owner == "daemon-b"

    def test_distinct_keys_do_not_contend(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.claim("key-one") is not None
        assert cache.claim("key-two") is not None

    def test_stale_claim_taken_over(self, tmp_path):
        cache = ResultCache(tmp_path)
        dead = cache.claim("feed99", owner="crashed-daemon")
        old = time.time() - 10_000
        os.utime(dead.path, (old, old))
        fresh = cache.claim("feed99", owner="survivor",
                            stale_after=600.0)
        assert fresh is not None and fresh.owner == "survivor"
        assert cache.claim_owner("feed99") == "survivor"

    def test_live_claim_not_taken_over(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.claim("beef42", owner="alive")
        assert cache.claim("beef42", owner="poacher",
                           stale_after=600.0) is None
        assert cache.claim_owner("beef42") == "alive"

    def test_release_is_idempotent(self, tmp_path):
        cache = ResultCache(tmp_path)
        claim = cache.claim("abcd12")
        cache.release(claim)
        cache.release(claim)          # second release must not raise

    def test_default_owner_names_host_and_pid(self, tmp_path):
        claim = ResultCache(tmp_path).claim("aa11bb")
        assert str(os.getpid()) in claim.owner

    def test_claims_are_not_cache_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.claim("dead00")
        assert cache.entries() == []
        assert cache.get("dead00") is None


class TestCodeGeneration:
    def test_code_version_memoized_per_process(self):
        assert code_version() is code_version()

    def test_refresh_without_change_keeps_generation(self):
        before = code_generation()
        version = cache_mod.refresh_code_version()
        assert version == code_version()
        assert code_generation() == before

    def test_refresh_after_change_bumps_generation(self, monkeypatch):
        before_gen = code_generation()
        before_version = code_version()
        monkeypatch.setattr(cache_mod, "_digest_source_tree",
                            lambda: "0" * 64)
        assert cache_mod.refresh_code_version() == "0" * 64
        assert code_generation() == before_gen + 1
        assert code_version() == "0" * 64
        # restore the real digest for the rest of the session
        monkeypatch.undo()
        cache_mod.refresh_code_version()
        assert code_version() == before_version

    def test_sweepjob_cache_key_takes_precomputed_version(self, tmp_path):
        # the daemon computes the digest once and threads it through
        # every cache_key call; keys must match the ambient digest path
        from repro.accel import higraph
        from repro.sweep.jobs import GraphSpec, SweepJob
        job = SweepJob(graph=GraphSpec("VT", scale=0.03), algorithm="BFS",
                       config=higraph())
        assert job.cache_key(code_version()) == job.cache_key(code_version())
        assert job.cache_key("other") != job.cache_key(code_version())
