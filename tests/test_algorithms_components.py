"""Tests for the extension algorithms (ConnectedComponents, Reachability)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import graphdyns, higraph, simulate
from repro.algorithms import ConnectedComponents, Reachability, make_algorithm, run_reference
from repro.graph import CSRGraph, chain, erdos_renyi, star


def symmetrize(g: CSRGraph) -> CSRGraph:
    src = g.edge_sources()
    both = np.concatenate([np.stack([src, g.dst], axis=1),
                           np.stack([g.dst, src], axis=1)])
    return CSRGraph.from_edges(g.num_vertices, both)


class TestConnectedComponents:
    def test_chain_is_one_component(self):
        res = run_reference(chain(8), ConnectedComponents(), source=0)
        assert np.all(res.properties == 0)

    def test_disjoint_pieces_get_distinct_labels(self):
        g = CSRGraph.from_edges(6, [(0, 1), (1, 0), (3, 4), (4, 3)])
        res = run_reference(g, ConnectedComponents(), source=0)
        labels = res.properties
        assert labels[0] == labels[1] == 0
        assert labels[3] == labels[4] == 3
        assert labels[2] == 2 and labels[5] == 5

    def test_matches_networkx_weakly_connected(self):
        g = symmetrize(erdos_renyi(80, 60, seed=5))
        res = run_reference(g, ConnectedComponents(), source=0)
        ng = nx.Graph()
        ng.add_nodes_from(range(g.num_vertices))
        ng.add_edges_from((s, d) for s, d, _ in g.edges())
        for comp in nx.connected_components(ng):
            expected = min(comp)
            for v in comp:
                assert res.properties[v] == expected

    def test_runs_on_hardware_sims(self):
        g = symmetrize(erdos_renyi(60, 90, seed=6))
        ref = run_reference(g, ConnectedComponents(), source=0)
        for cfg in (higraph(), graphdyns()):
            res = simulate(cfg, g, ConnectedComponents())
            assert np.array_equal(res.properties, ref.properties)

    @given(seed=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_labels_are_component_minima(self, seed):
        g = symmetrize(erdos_renyi(30, 40, seed=seed))
        labels = run_reference(g, ConnectedComponents(), source=0).properties
        # a label never exceeds the vertex id, and endpoints agree
        assert np.all(labels <= np.arange(g.num_vertices))
        for s, d, _ in g.edges():
            assert labels[s] == labels[d]


class TestReachability:
    def test_star_reaches_all_leaves(self):
        res = run_reference(star(5), Reachability(), source=0)
        assert np.all(res.properties == 1.0)

    def test_directionality_respected(self):
        g = CSRGraph.from_edges(3, [(1, 2)])
        res = run_reference(g, Reachability(), source=0)
        assert list(res.properties) == [1.0, 0.0, 0.0]

    def test_equals_bfs_reachability(self):
        g = erdos_renyi(70, 260, seed=8)
        reach = run_reference(g, Reachability(), source=0).properties
        bfs = run_reference(g, make_algorithm("BFS"), source=0).properties
        assert np.array_equal(reach == 1.0, np.isfinite(bfs))

    def test_on_hardware_sim(self):
        g = erdos_renyi(64, 256, seed=9)
        ref = run_reference(g, Reachability(), source=0)
        res = simulate(higraph(), g, Reachability(), source=0)
        assert np.array_equal(res.properties, ref.properties)

    def test_make_algorithm_knows_extensions(self):
        assert make_algorithm("cc").name == "CC"
        assert make_algorithm("reach").name == "REACH"
        with pytest.raises(ValueError):
            make_algorithm("nope")
