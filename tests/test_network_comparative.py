"""Comparative behaviour of MDP-network vs arbitrated crossbar.

The paper's §3.1 argument, quantified under controlled traffic patterns:
deterministic multi-stage propagation loses nothing to arbitration,
absorbs bursts in per-stage buffers, and — with tail-combining — beats
the one-record-per-cycle hotspot bound that no crossbar can escape.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.hw import ArbitratedCrossbar
from repro.mdp import MdpNetworkSim


def drive(make_dest, n=16, cycles=1200, depth=32, combine=None, seed=0):
    """Saturate both networks with the same destination sequence."""
    rng = np.random.default_rng(seed)
    dests = [make_dest(rng) for _ in range(cycles * n * 2)]

    def run_net(net, offer, tick):
        it = iter(dests)
        pending = [None] * n
        delivered = 0
        for _ in range(cycles):
            delivered += tick(net)
            for ch in range(n):
                if pending[ch] is None:
                    pending[ch] = next(it)
                if offer(net, ch, pending[ch]):
                    pending[ch] = None
        return delivered / (cycles * n)

    mdp = MdpNetworkSim(n, 2, fifo_depth=depth, combine_fn=combine)
    mdp_rate = run_net(
        mdp,
        lambda net, ch, d: net.offer(ch, d, (d, 1)),
        lambda net: len(net.tick([True] * n)),
    )
    xbar = ArbitratedCrossbar(n, n, fifo_depth=depth, combine_fn=combine)
    xbar_rate = run_net(
        xbar,
        lambda net, ch, d: net.offer(ch, d, (d, 1)),
        lambda net: len(net.tick([1] * n)),
    )
    return mdp_rate, xbar_rate


class TestTrafficPatterns:
    def test_uniform_random(self):
        mdp, xbar = drive(lambda rng: int(rng.integers(0, 16)))
        assert mdp > 0.90          # near line rate
        assert xbar < 0.80         # arbitration losses
        assert mdp > xbar + 0.1

    def test_identity_traffic_both_line_rate(self):
        counter = iter(range(10**9))

        def dest(rng):
            return next(counter) % 16
        # identity-ish round robin: no conflicts for either design
        mdp, xbar = drive(dest)
        assert mdp > 0.9
        assert xbar > 0.9

    def test_bit_reversal_is_the_butterfly_worst_case(self):
        """Honest asymmetry of the design: bit-reversal is the classic
        adversarial permutation for butterfly topologies — paired inputs
        always demand the same internal FIFO, so the MDP-network's rate
        collapses while the crossbar (one requester per output) runs at
        line rate.  Graph workloads never present this fixed permutation
        (destinations are data-dependent), which is why the trade wins
        in practice — but the corner exists and is pinned here."""
        state = {"i": 0}

        def dest(rng):
            ch = state["i"] % 16
            state["i"] += 1
            return int("{:04b}".format(ch)[::-1], 2)
        mdp, xbar = drive(dest)
        assert xbar > 0.85          # crossbar: conflict-free permutation
        assert mdp < 0.5            # butterfly internal-link conflicts

    def test_hotspot_without_combining_bounded(self):
        """All traffic to output 0: both designs are capped by the single
        output port — one record per cycle, rate ~1/n."""
        mdp, xbar = drive(lambda rng: 0, cycles=600)
        assert mdp <= 1.05 / 16
        assert xbar <= 1.05 / 16

    def test_hotspot_with_combining_absorbs_offers(self):
        """With tail-combining, a pure hotspot is absorbed at near line
        rate by both interconnects (records merge faster than the output
        port drains them) — whereas without combining the single output
        port rejects almost everything.  Delivered edge counts must be
        conserved either way."""
        def combine(a, b):
            if a[0] != b[0]:
                return None
            return (a[0], a[1] + b[1])

        def absorb(net, tick):
            accepted = 0
            delivered_edges = 0
            for _ in range(300):
                for _, payload in tick(net):
                    delivered_edges += payload[1]
                for ch in range(16):
                    if net.offer(ch, 0, (0, 1)):
                        accepted += 1
            while not net.drained:
                for _, payload in tick(net):
                    delivered_edges += payload[1]
            return accepted, delivered_edges

        plain, plain_edges = absorb(MdpNetworkSim(16, 2, fifo_depth=32),
                                    lambda n: n.tick([True] * 16))
        comb, comb_edges = absorb(
            MdpNetworkSim(16, 2, fifo_depth=32, combine_fn=combine),
            lambda n: n.tick([True] * 16))
        xcomb, xcomb_edges = absorb(
            ArbitratedCrossbar(16, 16, fifo_depth=32, combine_fn=combine),
            lambda n: n.tick([1] * 16))

        assert comb > plain * 3            # combining absorbs the hotspot
        assert xcomb > plain * 3           # for the crossbar too
        assert comb_edges == comb          # conservation with counts
        assert xcomb_edges == xcomb
        assert plain_edges == plain

    def test_adversarial_two_hot_outputs(self):
        mdp, xbar = drive(lambda rng: int(rng.integers(0, 2)) * 8)
        # two hot outputs: ideal rate = 2/n = 0.125
        assert mdp <= 0.14
        assert mdp >= xbar * 0.95


class TestInvariantEnforcement:
    def test_mdp_detects_misrouted_datum(self):
        """White-box failure injection: corrupting a final-stage queue
        must trip the routing invariant, not deliver silently."""
        net = MdpNetworkSim(4, 2, fifo_depth=4)
        net.stage_queues[-1][2].append((3, "corrupted"))  # dest 3 at pos 2
        with pytest.raises(SimulationError):
            net.deliver([True] * 4)

    def test_mdp_occupancy_accounting(self):
        net = MdpNetworkSim(8, 2, fifo_depth=8)
        for ch in range(8):
            net.offer(ch, ch, ch)
        assert net.occupancy == 8
        net.note_occupancy()
        assert net.occupancy_integral == 8

    def test_combined_counter_increments(self):
        def combine(a, b):
            return (a[0], a[1] + b[1]) if a[0] == b[0] else None
        net = MdpNetworkSim(4, 2, fifo_depth=4, combine_fn=combine)
        # channels 0 and 2 share a stage-0 module (paper pairing {0, 2}),
        # so both records land on the same FIFO and the tails merge
        net.offer(0, 3, (3, 1))
        net.offer(2, 3, (3, 1))
        assert net.combined == 1
        delivered = []
        while not net.drained:
            delivered.extend(net.tick([True] * 4))
        assert delivered == [(3, (3, 2))]

    def test_crossbar_combining_preserves_order_of_other_flows(self):
        def combine(a, b):
            return (a[0], a[1] + b[1]) if a[0] == b[0] else None
        xb = ArbitratedCrossbar(1, 2, fifo_depth=8, combine_fn=combine)
        xb.offer(0, 0, (0, 1))
        xb.offer(0, 1, (1, 1))
        xb.offer(0, 1, (1, 1))   # adjacent to the previous dest-1 record
        got = []
        for _ in range(6):
            got.extend(xb.tick([1, 1]))
        # tail-combining merges the adjacent same-dest pair, order intact
        assert got == [(0, (0, 1)), (1, (1, 2))]
