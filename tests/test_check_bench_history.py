"""Unit tests for the bench-history schema / trajectory checker."""

import importlib.util
import json
import os
import sys

import pytest

_SCRIPT = os.path.join(os.path.dirname(__file__), "..", "scripts",
                       "check_bench_history.py")
_spec = importlib.util.spec_from_file_location("check_bench_history", _SCRIPT)
cbh = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_bench_history", cbh)
_spec.loader.exec_module(cbh)


def record(**overrides):
    base = {
        "bench": "fig8_cold_sweep",
        "utc": "2026-07-30T00:00:00+00:00",
        "datasets": ["VT"],
        "algorithms": ["BFS", "PR"],
        "scales": {"VT": 1.0},
        "jobs": 6,
        "reference_seconds": 10.0,
        "batched_seconds": 5.0,
        "speedup": 2.0,
        "median_job_speedup": 2.1,
        "stats_identical": True,
        "engine_equivalence_class": "cycle-exact-v1",
        "python": "3.11.7",
        "machine": "x86_64",
    }
    base.update(overrides)
    return base


class TestSchema:
    def test_valid_record_passes(self):
        assert cbh.validate_record(record(), 1) == []

    def test_missing_field(self):
        bad = record()
        del bad["speedup"]
        errors = cbh.validate_record(bad, 3)
        assert len(errors) == 1
        assert "line 3" in errors[0] and "speedup" in errors[0]

    def test_wrong_type(self):
        errors = cbh.validate_record(record(jobs="six"), 1)
        assert errors and "jobs" in errors[0]

    def test_bool_is_not_a_number(self):
        errors = cbh.validate_record(record(speedup=True), 1)
        assert errors and "speedup" in errors[0]

    def test_nonpositive_values(self):
        assert cbh.validate_record(record(jobs=0), 1)
        assert cbh.validate_record(record(batched_seconds=0.0), 1)

    def test_ffwd_optional_but_typed(self):
        assert cbh.validate_record(record(ffwd={"windows": 1}), 1) == []
        assert cbh.validate_record(record(ffwd="lots"), 1)

    def test_pr10_fields_optional_but_positive(self):
        ok = record(bench="pr10_cold_sweep", pr10_seconds=1.5,
                    speedup_soa_pr10=12.0)
        assert cbh.validate_record(ok, 1) == []
        assert cbh.validate_record(record(pr10_seconds=0.0), 1)
        assert cbh.validate_record(record(speedup_soa_pr10="fast"), 1)


class TestChecks:
    def test_stats_identical_false_is_fatal(self):
        fatal, warnings = cbh.check_history(
            [record(), record(stats_identical=False)])
        assert fatal and "stats_identical" in fatal[0]
        assert not warnings

    def test_regression_vs_best_comparable_warns(self):
        fatal, warnings = cbh.check_history(
            [record(speedup=2.5), record(speedup=2.6), record(speedup=1.9)])
        assert not fatal
        assert warnings and "trajectory regression" in warnings[0]
        assert "2.6" in warnings[0]

    def test_within_tolerance_is_quiet(self):
        fatal, warnings = cbh.check_history(
            [record(speedup=2.5), record(speedup=2.1)])
        assert not fatal and not warnings

    def test_incomparable_records_not_compared(self):
        # different job count / scales: the 1.0x smoke run is not a
        # regression against the 2.5x full-matrix run
        fatal, warnings = cbh.check_history(
            [record(speedup=2.5),
             record(speedup=1.0, jobs=2, scales={"VT": 0.03})])
        assert not fatal and not warnings

    def test_benches_are_separate_trajectories(self):
        # a slow pr10 record is never a regression against fig8 peers
        fatal, warnings = cbh.check_history(
            [record(speedup=2.5),
             record(speedup=1.0, bench="pr10_cold_sweep")])
        assert not fatal and not warnings

    def test_each_bench_newest_is_watched(self):
        # the fig8 regression is caught even though a pr10 record was
        # appended after it — every bench's newest record is checked
        fatal, warnings = cbh.check_history(
            [record(speedup=2.6), record(speedup=1.9),
             record(speedup=5.0, bench="pr10_cold_sweep")])
        assert not fatal
        assert warnings and "trajectory regression" in warnings[0]
        assert "fig8_cold_sweep" in warnings[0] and "2.6" in warnings[0]

    def test_custom_tolerance(self):
        records = [record(speedup=2.0), record(speedup=1.7)]
        assert not cbh.check_history(records, tolerance=0.2)[1]
        assert cbh.check_history(records, tolerance=0.1)[1]

    def test_schema_errors_reported_before_trajectory(self):
        bad = record(speedup=2.0)
        del bad["utc"]
        fatal, warnings = cbh.check_history([bad, record(speedup=0.5)])
        assert fatal and not warnings


class TestMain:
    def _write(self, path, records):
        with open(path, "w", encoding="utf-8") as fh:
            for r in records:
                fh.write(json.dumps(r) + "\n")

    def test_ok_history(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        self._write(path, [record(), record(speedup=2.2)])
        assert cbh.main(["--file", str(path)]) == 0
        assert "2 record(s) OK" in capsys.readouterr().out

    def test_missing_file_is_ok(self, tmp_path):
        assert cbh.main(["--file", str(tmp_path / "none.jsonl")]) == 0

    def test_empty_file_is_ok(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text("")
        assert cbh.main(["--file", str(path)]) == 0

    def test_broken_json_fails_with_location(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text('{"bench": oops}\n')
        with pytest.raises(SystemExit) as excinfo:
            cbh.main(["--file", str(path)])
        assert ":1" in str(excinfo.value)

    def test_contract_violation_fails(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        self._write(path, [record(stats_identical=False)])
        assert cbh.main(["--file", str(path)]) == 1
        assert "stats_identical" in capsys.readouterr().err

    def test_regression_is_advisory_by_default(self, tmp_path, capsys):
        path = tmp_path / "hist.jsonl"
        self._write(path, [record(speedup=2.5), record(speedup=1.0)])
        assert cbh.main(["--file", str(path)]) == 0
        assert "WARNING" in capsys.readouterr().err

    def test_strict_promotes_regression_to_failure(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        self._write(path, [record(speedup=2.5), record(speedup=1.0)])
        assert cbh.main(["--file", str(path), "--strict"]) == 1

    def test_committed_history_is_valid(self):
        """The repo's own trajectory file must always pass the gate."""
        committed = os.path.join(os.path.dirname(__file__), "..",
                                 "benchmarks", "results",
                                 "bench_history.jsonl")
        if not os.path.exists(committed):
            pytest.skip("no committed bench history")
        records = cbh.load_history(committed)
        fatal, _ = cbh.check_history(records)
        assert fatal == []
