"""Unit + property tests for synthetic graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GenerationError
from repro.graph import (
    chain,
    complete,
    erdos_renyi,
    grid_2d,
    inverse_star,
    preferential_attachment,
    rmat,
    star,
)


class TestRmat:
    def test_sizes(self):
        g = rmat(8, 4.0, seed=3)
        assert g.num_vertices == 256
        assert g.num_edges == 1024

    def test_deterministic_under_seed(self):
        a, b = rmat(7, 3.0, seed=42), rmat(7, 3.0, seed=42)
        assert a == b

    def test_seed_changes_graph(self):
        assert rmat(7, 3.0, seed=1) != rmat(7, 3.0, seed=2)

    def test_weights_positive_integers(self):
        g = rmat(7, 3.0, seed=5)
        assert g.weights.min() >= 1
        assert g.weights.dtype == np.int64

    def test_skew_creates_hubs(self):
        """Graph500 parameters concentrate edges on low-id vertices."""
        g = rmat(10, 16.0, seed=7)
        deg = g.out_degree()
        top_share = np.sort(deg)[::-1][: len(deg) // 20].sum() / g.num_edges
        assert top_share > 0.25  # top 5% of vertices own >25% of edges

    def test_uniform_probabilities_flat(self):
        g = rmat(10, 16.0, a=0.25, b=0.25, c=0.25, seed=7)
        deg = g.out_degree()
        assert deg.max() < 20 * max(1, deg.mean())

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(GenerationError):
            rmat(4, 2.0, a=0.9, b=0.2, c=0.2)

    def test_invalid_scale_rejected(self):
        with pytest.raises(GenerationError):
            rmat(-1, 2.0)

    @given(scale=st.integers(min_value=0, max_value=8),
           ef=st.floats(min_value=0.5, max_value=8.0))
    @settings(max_examples=20, deadline=None)
    def test_rmat_always_valid(self, scale, ef):
        g = rmat(scale, ef, seed=11)
        g.validate()
        assert g.num_vertices == 1 << scale


class TestOtherGenerators:
    def test_erdos_renyi_edge_count(self):
        g = erdos_renyi(100, 500, seed=1)
        assert g.num_edges == 500
        assert g.num_vertices == 100

    def test_erdos_renyi_needs_vertices(self):
        with pytest.raises(GenerationError):
            erdos_renyi(0, 5)

    def test_preferential_attachment_in_degree_skew(self):
        g = preferential_attachment(500, 4, seed=9)
        in_deg = np.bincount(g.dst, minlength=g.num_vertices)
        assert in_deg.max() > 8 * max(1.0, in_deg.mean())

    def test_preferential_attachment_rejects_tiny(self):
        with pytest.raises(GenerationError):
            preferential_attachment(1, 2)

    def test_chain(self):
        g = chain(4)
        assert list(g.edges()) == [(0, 1, 1), (1, 2, 1), (2, 3, 1)]

    def test_star(self):
        g = star(3)
        assert g.num_vertices == 4
        assert list(g.neighbors(0)) == [1, 2, 3]

    def test_inverse_star_hotspot(self):
        g = inverse_star(5)
        assert all(d == 0 for _, d, _ in g.edges())

    def test_complete(self):
        g = complete(4)
        assert g.num_edges == 12
        assert 1 not in g.neighbors(1)

    def test_grid_2d_degrees(self):
        g = grid_2d(3, 3)
        deg = g.out_degree()
        assert deg[4] == 4          # centre
        assert deg[0] == 2          # corner
        assert g.num_edges == 2 * (3 * 2 + 3 * 2)

    def test_grid_rejects_empty(self):
        with pytest.raises(GenerationError):
            grid_2d(0, 3)


class TestDatasets:
    def test_table2_registry_matches_paper(self):
        from repro.graph import TABLE2
        assert TABLE2["VT"].num_edges == 103_689
        assert TABLE2["R14"].num_vertices == 16_384
        assert TABLE2["R14"].num_edges == 1_048_576
        assert TABLE2["R16"].num_edges == 4_194_304
        assert TABLE2["TW"].degree == 22

    def test_dataset_order_matches_figures(self):
        from repro.graph import DATASET_ORDER
        assert DATASET_ORDER == ("VT", "EP", "SL", "TW", "R14", "R16")

    def test_load_full_scale_sizes(self):
        from repro.graph import load
        g = load("R14")
        assert g.num_vertices == 16_384
        assert g.num_edges == 1_048_576

    def test_load_preserves_mean_degree_under_scaling(self):
        from repro.graph import TABLE2, load
        spec = TABLE2["TW"]
        g = load("TW", scale=0.25)
        assert g.mean_degree == pytest.approx(spec.mean_degree, rel=0.01)

    def test_load_unknown_rejected(self):
        from repro.errors import GenerationError
        from repro.graph import load
        with pytest.raises(GenerationError):
            load("nope")

    def test_load_bad_scale_rejected(self):
        from repro.errors import GenerationError
        from repro.graph import load
        with pytest.raises(GenerationError):
            load("VT", scale=0.0)

    def test_load_deterministic(self):
        from repro.graph import load
        assert load("EP", scale=0.05) == load("EP", scale=0.05)

    def test_table2_rows_structure(self):
        from repro.graph import table2_rows
        rows = table2_rows(scale=0.05)
        assert len(rows) == 6
        assert {r["name"] for r in rows} == {"VT", "EP", "SL", "TW", "R14", "R16"}
        for r in rows:
            assert r["generated_degree"] == pytest.approx(
                r["paper_edges"] / r["paper_vertices"], rel=0.01)
