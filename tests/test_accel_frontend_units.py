"""Focused unit tests for the front-end stage implementations (site ①)."""

from collections import deque

import numpy as np
import pytest

from repro.accel.config import higraph, graphdyns
from repro.accel.frontend import (
    CrossbarOffsetFrontend,
    MdpOffsetFrontend,
    make_frontend,
)
from repro.hw.fifo import Fifo


def run_frontend(frontend, vertices, offsets, n, fe_out_depth=64,
                 max_cycles=500):
    """Drive a frontend until all vertices retire; return emitted requests."""
    parts = [deque() for _ in range(n)]
    for i, u in enumerate(vertices):
        parts[i % n].append((u, float(u)))
    fe_out = [Fifo(fe_out_depth) for _ in range(n)]
    cycles = 0
    while frontend.retired < len(vertices):
        frontend.tick(parts, fe_out)
        cycles += 1
        assert cycles < max_cycles, "frontend did not retire all vertices"
    requests = []
    for f in fe_out:
        while not f.empty:
            requests.append(f.pop())
    return requests, cycles


@pytest.fixture
def offsets():
    # 8 vertices: degrees 2,0,3,1,4,0,2,1  (offsets length 9)
    return np.array([0, 2, 2, 5, 6, 10, 10, 12, 13], dtype=np.int64)


@pytest.mark.parametrize("factory,cfg", [
    (MdpOffsetFrontend, higraph(front_channels=8)),
    (CrossbarOffsetFrontend, graphdyns().with_(front_channels=8,
                                               offset_site="crossbar")),
])
class TestBothFrontends:
    def test_all_nonzero_degree_vertices_emit_requests(self, factory, cfg,
                                                       offsets):
        fe = factory(cfg, offsets)
        requests, _ = run_frontend(fe, list(range(8)), offsets, 8)
        # zero-degree vertices (1 and 5) are dropped silently
        assert len(requests) == 6
        emitted = sorted((off, length) for off, length, _ in requests)
        assert emitted == [(0, 2), (2, 3), (5, 1), (6, 4), (10, 2), (12, 1)]

    def test_sprop_carried_through(self, factory, cfg, offsets):
        fe = factory(cfg, offsets)
        requests, _ = run_frontend(fe, [2], offsets, 8)
        assert requests == [(2, 3, 2.0)]

    def test_retired_counts_drops_too(self, factory, cfg, offsets):
        fe = factory(cfg, offsets)
        run_frontend(fe, [1, 5], offsets, 8)   # both zero-degree
        assert fe.retired == 2

    def test_repeated_vertices_allowed(self, factory, cfg, offsets):
        fe = factory(cfg, offsets)
        requests, _ = run_frontend(fe, [0, 0, 0], offsets, 8)
        assert [r[:2] for r in requests] == [(0, 2)] * 3

    def test_drained_after_run(self, factory, cfg, offsets):
        fe = factory(cfg, offsets)
        run_frontend(fe, list(range(8)), offsets, 8)
        assert fe.drained


class TestFactory:
    def test_make_frontend_selects_site(self, offsets):
        assert isinstance(make_frontend(higraph(), offsets), MdpOffsetFrontend)
        assert isinstance(make_frontend(graphdyns(), offsets),
                          CrossbarOffsetFrontend)

    def test_backpressure_from_full_fe_out(self, offsets):
        """A full {Off, Len} queue must stall issue, not drop requests."""
        cfg = higraph(front_channels=8)
        fe = MdpOffsetFrontend(cfg, offsets)
        parts = [deque() for _ in range(8)]
        parts[0].append((0, 0.0))
        fe_out = [Fifo(1) for _ in range(8)]
        fe_out[0].push(("block", 0, 0.0))   # occupy the slot
        for _ in range(20):
            fe.tick(parts, fe_out)
        assert fe.retired == 0              # stalled, nothing lost
        fe_out[0].pop()
        for _ in range(20):
            fe.tick(parts, fe_out)
        assert fe.retired == 1
