"""Unit tests for the interprocedural core: call graph + dataflow."""

import textwrap
from pathlib import Path

from repro.analysis.astutils import find_class, find_method
from repro.analysis.context import Project
from repro.analysis.dataflow import (
    fork_entry_points, module_global_mutations,
    transitive_self_attribute_loads)


def write(root: Path, relpath: str, source: str) -> None:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")


def project(root: Path) -> Project:
    return Project(root)


class TestCallGraph:
    def test_same_module_and_cross_module_edges(self, tmp_path):
        write(tmp_path, "src/repro/util.py", """\
            def helper():
                return 1
        """)
        write(tmp_path, "src/repro/main.py", """\
            from repro.util import helper
            import repro.util as util


            def local():
                return helper()


            def entry():
                local()
                return util.helper()
        """)
        g = project(tmp_path).callgraph()
        entry = ("src/repro/main.py", "entry")
        assert ("src/repro/main.py", "local") in g.calls[entry]
        assert ("src/repro/util.py", "helper") in g.calls[entry]
        assert ("src/repro/util.py", "helper") in g.calls[
            ("src/repro/main.py", "local")]

    def test_self_method_and_class_method_edges(self, tmp_path):
        write(tmp_path, "src/repro/obj.py", """\
            class Thing:
                def outer(self):
                    return self.inner()

                def inner(self):
                    return Thing.static_like()

                def static_like():
                    return 0
        """)
        g = project(tmp_path).callgraph()
        rel = "src/repro/obj.py"
        assert (rel, "Thing.inner") in g.calls[(rel, "Thing.outer")]
        assert (rel, "Thing.static_like") in g.calls[(rel, "Thing.inner")]

    def test_callback_reference_recorded_and_reachable(self, tmp_path):
        write(tmp_path, "src/repro/work.py", """\
            def worker(item):
                return item


            def driver(pool, items):
                return pool.imap_unordered(worker, items)
        """)
        g = project(tmp_path).callgraph()
        rel = "src/repro/work.py"
        assert (rel, "worker") in g.refs[(rel, "driver")]
        assert (rel, "worker") in g.reachable([(rel, "driver")])
        assert (rel, "worker") not in g.reachable(
            [(rel, "driver")], include_refs=False)

    def test_unresolvable_calls_add_no_edges(self, tmp_path):
        write(tmp_path, "src/repro/dyn.py", """\
            def entry(obj):
                obj.method()
                getattr(obj, "x")()
                unknown_name()
        """)
        g = project(tmp_path).callgraph()
        assert g.calls[("src/repro/dyn.py", "entry")] == set()

    def test_relative_import_resolution(self, tmp_path):
        write(tmp_path, "src/repro/pkg/__init__.py", "")
        write(tmp_path, "src/repro/pkg/a.py", """\
            def target():
                return 1
        """)
        write(tmp_path, "src/repro/pkg/b.py", """\
            from .a import target


            def caller():
                return target()
        """)
        g = project(tmp_path).callgraph()
        assert ("src/repro/pkg/a.py", "target") in g.calls[
            ("src/repro/pkg/b.py", "caller")]


class TestTransitiveSelfAttributeLoads:
    SOURCE = """\
        def summarize(job, extra=0):
            return job.graph + extra


        class Job:
            def key(self):
                return self._direct + self.helper()

            def helper(self):
                return self.engine + summarize(self)

            def unrelated(self):
                return self.never_in_key
    """

    def loads(self, tmp_path):
        write(tmp_path, "src/repro/jobs.py", self.SOURCE)
        ctx = project(tmp_path).module("src/repro/jobs.py")
        cls = find_class(ctx.tree, "Job")
        return transitive_self_attribute_loads(
            ctx.tree, cls, find_method(cls, "key"))

    def test_direct_and_helper_and_module_function_loads(self, tmp_path):
        loads = self.loads(tmp_path)
        assert set(loads) == {"_direct", "helper", "engine", "graph"}
        assert "never_in_key" not in loads

    def test_via_attribution(self, tmp_path):
        loads = self.loads(tmp_path)
        assert loads["engine"][0] == "Job.helper"
        assert loads["graph"][0] == "summarize"
        assert loads["_direct"][0] == "Job.key"


class TestModuleGlobalMutations:
    def test_mutation_kinds_attributed_to_functions(self, tmp_path):
        write(tmp_path, "src/repro/state.py", """\
            MEMO = {}
            LOG = []
            COUNT = 0
            LOCAL_ONLY = {}


            def fill(key, value):
                MEMO[key] = value
                LOG.append(key)


            def bump():
                global COUNT
                COUNT += 1


            def clean(key):
                del MEMO[key]


            def innocent():
                mine = {}
                mine["x"] = 1
                return mine
        """)
        ctx = project(tmp_path).module("src/repro/state.py")
        muts = {(m.name, m.function, m.how)
                for m in module_global_mutations(ctx)}
        assert ("MEMO", "fill", "[...] = ...") in muts
        assert ("LOG", "fill", ".append(...)") in muts
        assert ("COUNT", "bump", "augment") in muts
        assert ("MEMO", "clean", "del [...]") in muts
        assert not any(m[1] == "innocent" for m in muts)

    def test_top_level_initialization_not_reported(self, tmp_path):
        write(tmp_path, "src/repro/init.py", """\
            TABLE = {}
            TABLE["seed"] = 1
        """)
        ctx = project(tmp_path).module("src/repro/init.py")
        assert module_global_mutations(ctx) == []

    def test_nested_function_gets_its_own_qualname(self, tmp_path):
        write(tmp_path, "src/repro/nest.py", """\
            MEMO = {}


            def outer():
                def inner():
                    MEMO["k"] = 1
                return inner
        """)
        ctx = project(tmp_path).module("src/repro/nest.py")
        muts = module_global_mutations(ctx)
        assert [(m.name, m.function) for m in muts] == [
            ("MEMO", "outer.inner")]


class TestForkEntryPoints:
    def test_pool_and_process_targets(self, tmp_path):
        write(tmp_path, "src/repro/sweep/run.py", """\
            import multiprocessing


            def worker(item):
                return item


            def spawned():
                return None


            def run(items):
                with multiprocessing.Pool() as pool:
                    out = list(pool.imap_unordered(worker, items))
                proc = multiprocessing.Process(target=spawned)
                proc.start()
                return out
        """)
        p = project(tmp_path)
        g = p.callgraph()
        ctx = p.module("src/repro/sweep/run.py")
        entries = fork_entry_points(g, ctx)
        workers = {e.worker[1]: e.dispatcher for e in entries}
        assert workers == {
            "worker": "pool.imap_unordered",
            "spawned": "multiprocessing.Process"}

    def test_plain_method_calls_are_not_entries(self, tmp_path):
        write(tmp_path, "src/repro/sweep/calm.py", """\
            def helper(x):
                return x


            def run(items):
                return [helper(i) for i in items]
        """)
        p = project(tmp_path)
        g = p.callgraph()
        assert fork_entry_points(g, p.module("src/repro/sweep/calm.py")) == []
