"""Tests for the Algorithm 1 generator and netlist emission."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mdp import (
    build_netlist,
    emit_verilog,
    generate_network,
    netlist_summary,
    pair_list,
    validate_plan,
)


class TestPaperExample:
    """The toy example of paper Fig. 5(d) / §3.2: four channels, radix 2."""

    def test_two_stages(self):
        plan = generate_network(4, radix=2)
        assert plan.num_stages == 2

    def test_stage1_pairs_are_02_and_13(self):
        plan = generate_network(4, radix=2)
        assert pair_list(plan, 0) == [[0, 2], [1, 3]]

    def test_stage1_routes_by_addr_bit_1(self):
        plan = generate_network(4, radix=2)
        assert plan.stages[0].digit_index == 1

    def test_stage2_pairs_are_01_and_23(self):
        plan = generate_network(4, radix=2)
        assert pair_list(plan, 1) == [[0, 1], [2, 3]]

    def test_stage2_routes_by_addr_bit_0(self):
        plan = generate_network(4, radix=2)
        assert plan.stages[1].digit_index == 0

    def test_channel_step_matches_paper(self):
        """§3.2: 'Channel_step is the difference between two input
        channel IDs connecting to one 2W2R module (channel_step = 2)'."""
        plan = generate_network(4, radix=2)
        for m in plan.stages[0].modules:
            assert m.channels[1] - m.channels[0] == 2
        for m in plan.stages[1].modules:
            assert m.channels[1] - m.channels[0] == 1


class TestGeneratedStructure:
    @pytest.mark.parametrize("n,r", [(4, 2), (8, 2), (32, 2), (16, 4), (64, 4),
                                     (27, 3), (256, 2), (64, 8)])
    def test_plan_valid(self, n, r):
        validate_plan(generate_network(n, r))

    @pytest.mark.parametrize("n,r,stages", [(4, 2, 2), (32, 2, 5), (256, 2, 8),
                                            (16, 4, 2), (64, 4, 3), (27, 3, 3)])
    def test_stage_count_is_log(self, n, r, stages):
        assert generate_network(n, r).num_stages == stages

    def test_modules_partition_channels_each_stage(self):
        plan = generate_network(32, 2)
        for stage in plan.stages:
            covered = sorted(c for m in stage.modules for c in m.channels)
            assert covered == list(range(32))

    def test_every_destination_reachable_from_every_input(self):
        plan = generate_network(8, 2)
        # simulate pure-routing walk from each entry position
        for entry in range(8):
            for dest in range(8):
                pos = entry
                for stage in plan.stages:
                    module = stage.module_of(pos)
                    pos = module.channels[plan.digit(dest, stage.digit_index)]
                assert pos == dest

    def test_digit_extraction(self):
        plan = generate_network(16, 4)
        assert plan.digit(7, 0) == 3
        assert plan.digit(7, 1) == 1

    def test_non_power_rejected(self):
        with pytest.raises(ConfigError):
            generate_network(12, 2)

    def test_radix_1_rejected(self):
        with pytest.raises(ConfigError):
            generate_network(4, 1)

    def test_fewer_channels_than_radix_rejected(self):
        with pytest.raises(ConfigError):
            generate_network(2, 4)

    @given(log_n=st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_radix2_route_ends_at_destination(self, log_n):
        plan = generate_network(2 ** log_n, 2)
        for dest in range(plan.channels):
            assert plan.route(dest)[-1] == dest


class TestNetlist:
    def test_fifo_instance_count(self):
        """n * log_r(n) FIFOs: the decentralized cost structure."""
        net = build_netlist(32, 2)
        assert net.num_fifos == 32 * 5

    def test_connection_count(self):
        net = build_netlist(4, 2)
        # per stage: 2 modules * 2 fifos * 2 writers = 8 connections
        assert len(net.connections) == 16

    def test_summary_fields(self):
        s = netlist_summary(build_netlist(16, 2, fifo_depth=8, data_width=38))
        assert s["channels"] == 16
        assert s["stages"] == 4
        assert s["fifo_instances"] == 64
        assert s["min_latency_cycles"] == 4
        assert s["buffer_bits"] == 64 * 8 * 38

    def test_bad_depth_rejected(self):
        with pytest.raises(ConfigError):
            build_netlist(4, 2, fifo_depth=0)

    def test_verilog_contains_module_and_fifos(self):
        text = emit_verilog(build_netlist(4, 2))
        assert "module mdp_network_n4_r2" in text
        assert text.count("mdp_fifo #(") >= 8
        assert "endmodule" in text

    def test_verilog_stage_comments_reflect_wiring(self):
        text = emit_verilog(build_netlist(4, 2))
        assert "ports {0, 2}" in text
        assert "ports {1, 3}" in text
        assert "ports {0, 1}" in text
        assert "ports {2, 3}" in text

    def test_verilog_custom_name(self):
        text = emit_verilog(build_netlist(8, 2), module_name="my_net")
        assert "module my_net" in text
