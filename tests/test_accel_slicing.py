"""Tests for the large-graph slicing mode (§5.3 Discussion)."""

import numpy as np
import pytest

from repro.accel import SlicedAcceleratorSim, higraph, simulate, slice_load_cycles
from repro.accel.slicing import _exposed_load_cycles
from repro.algorithms import BFS, SSSP, PageRank, run_reference
from repro.errors import ConfigError, ReproError
from repro.graph import erdos_renyi, partition_by_destination, rmat


@pytest.fixture(scope="module")
def graph():
    return rmat(9, 8.0, seed=21)


class TestSlicedCorrectness:
    @pytest.mark.parametrize("num_slices", [1, 2, 4])
    def test_matches_reference_bfs(self, graph, num_slices):
        slices = partition_by_destination(graph, num_slices)
        sim = SlicedAcceleratorSim(higraph(), graph, BFS(), slices=slices)
        ref = run_reference(graph, BFS(), source=0)
        res = sim.run(source=0)
        assert np.array_equal(res.properties, ref.properties)

    def test_matches_reference_pr(self, graph):
        slices = partition_by_destination(graph, 3)
        sim = SlicedAcceleratorSim(higraph(), graph, PageRank(iterations=3),
                                   slices=slices)
        ref = run_reference(graph, PageRank(iterations=3), source=0)
        res = sim.run(source=0)
        assert np.allclose(res.properties, ref.properties, rtol=1e-9)

    def test_single_slice_equals_unsliced_result(self, graph):
        slices = partition_by_destination(graph, 1)
        sliced = SlicedAcceleratorSim(higraph(), graph, SSSP(),
                                      slices=slices).run()
        plain = simulate(higraph(), graph, SSSP())
        assert np.array_equal(sliced.properties, plain.properties)

    def test_auto_partition_from_budget(self):
        g = rmat(8, 16.0, seed=22)
        budget = g.memory_footprint(id_bits=19).total_bytes // 2
        cfg = higraph(onchip_memory_bytes=budget)
        sim = SlicedAcceleratorSim(cfg, g, BFS())
        assert len(sim.slices) >= 2
        ref = run_reference(g, BFS(), source=0)
        assert np.array_equal(sim.run().properties, ref.properties)


class TestSlicedAccounting:
    def test_slice_count_recorded(self, graph):
        slices = partition_by_destination(graph, 4)
        res = SlicedAcceleratorSim(higraph(), graph, BFS(), slices=slices).run()
        assert res.stats.slices == 4

    def test_slicing_costs_compute_cycles(self, graph):
        """More slices -> more scatter passes -> more compute cycles
        (compare with off-chip transfer factored out: double buffering
        can make the *total* cheaper by hiding loads)."""
        fast_link = 1e9
        one = SlicedAcceleratorSim(higraph(), graph, BFS(),
                                   slices=partition_by_destination(graph, 1),
                                   offchip_bytes_per_cycle=fast_link).run()
        four = SlicedAcceleratorSim(higraph(), graph, BFS(),
                                    slices=partition_by_destination(graph, 4),
                                    offchip_bytes_per_cycle=fast_link).run()
        assert four.stats.scatter_cycles > one.stats.scatter_cycles

    def test_load_cycles_model(self):
        # 1000 edges * 23 bits / 8 = 2875 bytes at 64 B/cycle -> 45 cycles
        assert slice_load_cycles(1000, 64.0) == 45

    def test_double_buffer_hides_fast_loads(self):
        # loads fully hidden behind compute except the first
        assert _exposed_load_cycles([10, 10, 10], [50, 50, 50]) == 10

    def test_double_buffer_exposes_slow_loads(self):
        assert _exposed_load_cycles([100, 100], [30, 999]) == 100 + 70

    def test_empty_slice_list(self):
        assert _exposed_load_cycles([], []) == 0

    def test_exposed_cycles_in_stats(self, graph):
        slices = partition_by_destination(graph, 2)
        res = SlicedAcceleratorSim(higraph(), graph, BFS(), slices=slices,
                                   offchip_bytes_per_cycle=1.0).run()
        assert res.stats.slice_load_cycles > 0
        # slow off-chip link dominates the runtime
        fast = SlicedAcceleratorSim(higraph(), graph, BFS(), slices=slices,
                                    offchip_bytes_per_cycle=1e9).run()
        assert res.stats.total_cycles > fast.stats.total_cycles

    def test_bad_bandwidth_rejected(self, graph):
        with pytest.raises(ConfigError):
            SlicedAcceleratorSim(higraph(), graph, BFS(),
                                 offchip_bytes_per_cycle=0)

    def test_bad_bandwidth_is_a_repro_error(self, graph):
        """Callers catching the library taxonomy see config errors too."""
        with pytest.raises(ReproError):
            SlicedAcceleratorSim(higraph(), graph, BFS(),
                                 offchip_bytes_per_cycle=-3.0)


class TestLoadCyclesBoundaries:
    """Degenerate inputs must fail loudly or cost exactly nothing."""

    def test_zero_edge_slice_costs_nothing(self):
        assert slice_load_cycles(0, 64.0) == 0
        assert slice_load_cycles(0, 0.001) == 0

    def test_negative_edges_rejected(self):
        with pytest.raises(ConfigError):
            slice_load_cycles(-1, 64.0)

    @pytest.mark.parametrize("bandwidth",
                             [0, 0.0, -1.0, float("inf"), float("nan")])
    def test_degenerate_bandwidth_rejected(self, bandwidth):
        with pytest.raises(ConfigError):
            slice_load_cycles(1000, bandwidth)

    def test_single_edge_rounds_up_to_one_cycle(self):
        # 1 edge * 23 bits / 8 = 2.875 bytes, far below one 64 B beat
        assert slice_load_cycles(1, 64.0) == 1
