"""The serve wire protocol: codec round-trips, version gating, job form."""

import json

import numpy as np
import pytest

from repro.accel import higraph, higraph_mini
from repro.errors import ProtocolError, ProtocolVersionError
from repro.graph.csr import CSRGraph
from repro.serve import protocol
from repro.sweep.jobs import GraphSpec, SweepJob


def roundtrip(msg):
    return protocol.decode(protocol.encode(msg))


class TestCodec:
    @pytest.mark.parametrize("msg", [
        protocol.Ping(),
        protocol.SubmitSweep(jobs=[{"x": 1}]),
        protocol.QueryStatus(),
        protocol.QueryStatus(ticket="t3"),
        protocol.StreamProgress(ticket="t1"),
        protocol.FetchSweep(ticket="t2"),
        protocol.RegenReport(results_dir="r", sections=["fig8"], charts=True,
                             scale="0.02"),
        protocol.CacheInfo(),
        protocol.CacheGc(max_age_seconds=60.0, dry_run=True),
        protocol.Reload(),
        protocol.Shutdown(),
        protocol.Pong(protocol=1, generation=2, code_version="abc"),
        protocol.Submitted(ticket="t1", jobs=4),
        protocol.StatusReply(state="running", done=1, total=3),
        protocol.Progress(ticket="t1", done=1, total=3, job="BFS/VT"),
        protocol.SweepDone(ticket="t1", stats=[{"gteps": 1.0}],
                           cache_hits=2, deduped=1, job_seconds=[0.5]),
        protocol.ReportDone(results_dir="r", report_path="r/REPORT.md",
                            provenance_path="r/REPORT.provenance.json"),
        protocol.CacheInfoReply(cache_dir="/c", entries=3, hits=1),
        protocol.CacheGcReply(scanned=4, removed=2),
        protocol.Reloaded(code_version="abc", generation=1, changed=True),
        protocol.ShuttingDown(),
        protocol.Error(code="bad-request", message="nope"),
    ])
    def test_roundtrip_every_message_type(self, msg):
        assert roundtrip(msg) == msg

    def test_one_line_versioned_json(self):
        raw = protocol.encode(protocol.Ping())
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
        payload = json.loads(raw)
        assert payload["v"] == protocol.PROTOCOL_VERSION
        assert payload["type"] == "ping"

    def test_version_mismatch_rejected_before_type(self):
        # even an unknown type must be diagnosed as a version problem
        # first, so incompatible peers always get the right error
        line = json.dumps({"v": 999, "type": "no-such-type"})
        with pytest.raises(ProtocolVersionError, match="999"):
            protocol.decode(line)

    def test_missing_version_rejected(self):
        with pytest.raises(ProtocolVersionError):
            protocol.decode(json.dumps({"type": "ping"}))

    def test_unknown_type_rejected(self):
        line = json.dumps({"v": protocol.PROTOCOL_VERSION, "type": "zap"})
        with pytest.raises(ProtocolError, match="zap"):
            protocol.decode(line)

    def test_bad_fields_rejected(self):
        line = json.dumps({"v": protocol.PROTOCOL_VERSION, "type": "ping",
                           "unexpected": 1})
        with pytest.raises(ProtocolError, match="ping"):
            protocol.decode(line)

    def test_malformed_json_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode(b"{not json\n")
        with pytest.raises(ProtocolError):
            protocol.decode(json.dumps([1, 2]))

    def test_unregistered_object_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            protocol.encode(object())


class TestJobWire:
    def test_spec_job_roundtrip_preserves_cache_key(self):
        job = SweepJob(graph=GraphSpec("VT", scale=0.25, seed=7),
                       algorithm="PR", algorithm_kwargs={"iterations": 3},
                       config=higraph(), source=2, max_iterations=9,
                       num_slices=2, offchip_bytes_per_cycle=32.0,
                       engine="reference", tags={"dataset": "VT"})
        back = protocol.job_from_wire(protocol.job_to_wire(job))
        assert back.cache_key("v1") == job.cache_key("v1")
        assert back.tags == job.tags
        assert back.algorithm_kwargs == {"iterations": 3}

    def test_wire_form_is_json_serializable(self):
        job = SweepJob(graph=GraphSpec("R14", scale=0.02), algorithm="BFS",
                       config=higraph_mini())
        json.dumps(protocol.job_to_wire(job))   # must not raise

    def test_inline_csr_roundtrip_preserves_cache_key(self):
        graph = CSRGraph(offsets=np.array([0, 2, 3, 3], dtype=np.int64),
                         dst=np.array([1, 2, 0], dtype=np.int64),
                         weights=np.array([1, 4, 2], dtype=np.int64),
                         name="tiny")
        job = SweepJob(graph=graph, algorithm="BFS", config=higraph())
        wire = json.loads(json.dumps(protocol.job_to_wire(job)))
        back = protocol.job_from_wire(wire)
        assert back.cache_key("v1") == job.cache_key("v1")
        assert isinstance(back.graph, CSRGraph)
        np.testing.assert_array_equal(back.graph.dst, graph.dst)

    def test_defaulted_fields_round_trip(self):
        job = SweepJob(graph=GraphSpec("VT"), algorithm="SSSP",
                       config=higraph())
        back = protocol.job_from_wire(protocol.job_to_wire(job))
        assert back.engine is None
        assert back.num_slices == 1
        assert back.max_iterations is None

    def test_malformed_job_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.job_from_wire("not a dict")
        with pytest.raises(ProtocolError):
            protocol.job_from_wire({"graph": {"kind": "martian"},
                                    "algorithm": "BFS", "config": {}})
        with pytest.raises(ProtocolError):
            protocol.job_from_wire({"algorithm": "BFS"})
