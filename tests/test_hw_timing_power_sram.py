"""Tests for banked SRAM, the Fig. 4 timing model, and §5.4 area/power."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hw import (
    BankedMemory,
    crossbar_area_mm2,
    crossbar_critical_path_ns,
    crossbar_frequency_ghz,
    crossbar_power_mw,
    design_frequency_ghz,
    fig4_rows,
    mdp_area_mm2,
    mdp_critical_path_ns,
    mdp_frequency_ghz,
    mdp_power_mw,
    sec54_rows,
)


class TestBankedMemory:
    def make(self, banks=4):
        return BankedMemory(np.arange(16) * 10, num_banks=banks, name="t")

    def test_bank_mapping_interleaved(self):
        m = self.make(4)
        assert m.bank_of(0) == 0
        assert m.bank_of(5) == 1
        assert m.bank_of(7) == 3

    def test_read_returns_value(self):
        m = self.make()
        m.begin_cycle()
        assert m.try_read(3) == 30

    def test_bank_conflict_within_cycle(self):
        m = self.make(4)
        m.begin_cycle()
        assert m.try_read(1) == 10
        assert m.try_read(5) is None        # same bank, different address
        m.begin_cycle()
        assert m.try_read(5) == 50          # next cycle succeeds

    def test_same_address_merges(self):
        m = self.make(4)
        m.begin_cycle()
        assert m.try_read(2) == 20
        assert m.try_read(2) == 20
        assert m.merged_reads == 1

    def test_different_banks_concurrent(self):
        m = self.make(4)
        m.begin_cycle()
        assert m.try_read(0) is not None
        assert m.try_read(1) is not None
        assert m.try_read(2) is not None

    def test_utilization_statistics(self):
        m = self.make(4)
        m.begin_cycle()
        m.try_read(0)
        m.try_read(1)
        m.begin_cycle()     # accounts the previous cycle's 2 busy banks
        assert m.utilization == pytest.approx(2 / 8)

    def test_zero_banks_rejected(self):
        with pytest.raises(ConfigError):
            BankedMemory(np.zeros(4), 0)


class TestTimingModel:
    def test_fig4_calibration_points(self):
        """The model passes through the paper's Fig. 4 anchor points."""
        assert crossbar_frequency_ghz(4) == pytest.approx(2.23, abs=0.05)
        assert crossbar_frequency_ghz(32) == pytest.approx(1.00, abs=0.01)
        assert crossbar_frequency_ghz(256) == pytest.approx(0.30, abs=0.02)

    def test_fig4_intermediate_points_on_curve(self):
        assert crossbar_frequency_ghz(8) == pytest.approx(1.7, abs=0.15)
        assert crossbar_frequency_ghz(16) == pytest.approx(1.35, abs=0.15)
        assert crossbar_frequency_ghz(64) == pytest.approx(0.75, abs=0.08)
        assert crossbar_frequency_ghz(128) == pytest.approx(0.50, abs=0.05)

    def test_frequency_declines_sharply_with_ports(self):
        freqs = [crossbar_frequency_ghz(p) for p in (4, 8, 16, 32, 64, 128, 256)]
        assert all(a > b for a, b in zip(freqs, freqs[1:]))
        assert freqs[0] / freqs[-1] > 7     # "declines sharply" (Fig. 4)

    def test_mdp_paper_critical_paths(self):
        """§5.1: 0.93 ns at 32 channels; §5.3: 0.97 ns at 256 channels."""
        assert mdp_critical_path_ns(32, 2) == pytest.approx(0.93, abs=0.005)
        assert mdp_critical_path_ns(256, 2) == pytest.approx(0.97, abs=0.005)

    def test_mdp_meets_1ghz_up_to_256_channels(self):
        for ch in (32, 64, 128, 256):
            assert mdp_frequency_ghz(ch, 2) >= 1.0

    def test_large_radix_recentralizes(self):
        """§5.4: 'a too large radix still encounters design
        centralization' — critical path grows with radix."""
        assert mdp_critical_path_ns(32, 16) > mdp_critical_path_ns(32, 2)
        assert mdp_frequency_ghz(32, 32) < 1.0

    def test_design_frequency_caps_at_target(self):
        assert design_frequency_ghz(crossbar_ports=4) == 1.0      # never above target
        assert design_frequency_ghz(mdp_channels=256) == 1.0

    def test_design_frequency_follows_slowest_structure(self):
        f = design_frequency_ghz(crossbar_ports=64)
        assert f == pytest.approx(crossbar_frequency_ghz(64), rel=1e-12)
        f = design_frequency_ghz(crossbar_ports=64, mdp_channels=32)
        assert f == pytest.approx(crossbar_frequency_ghz(64), rel=1e-12)

    def test_fig4_rows_shape(self):
        rows = fig4_rows()
        assert [r["ports"] for r in rows] == [4, 8, 16, 32, 64, 128, 256]
        assert all(r["frequency_ghz"] == pytest.approx(1 / r["critical_path_ns"])
                   for r in rows)

    def test_invalid_ports_rejected(self):
        with pytest.raises(ConfigError):
            crossbar_critical_path_ns(1)
        with pytest.raises(ConfigError):
            mdp_critical_path_ns(32, radix=1)


class TestAreaPowerModel:
    def test_sec54_mdp_point(self):
        """Paper: MDP-network @160 entries = 0.375 mm², 621.2 mW."""
        assert mdp_area_mm2(32, 160) == pytest.approx(0.375, abs=0.002)
        assert mdp_power_mw(32, 160) == pytest.approx(621.2, abs=2.0)

    def test_sec54_crossbar_point(self):
        """Paper: FIFO+crossbar @128 entries = 0.292 mm², 508.1 mW."""
        assert crossbar_area_mm2(32, 128) == pytest.approx(0.292, abs=0.002)
        assert crossbar_power_mw(32, 128) == pytest.approx(508.1, abs=2.0)

    def test_overhead_is_small(self):
        """'replacing crossbar with MDP-network brings little overhead'
        — under 30% on both axes at the paper's buffer sizes."""
        assert mdp_area_mm2() / crossbar_area_mm2() < 1.3
        assert mdp_power_mw() / crossbar_power_mw() < 1.3

    def test_equal_buffers_make_logic_overhead_tiny(self):
        a_mdp = mdp_area_mm2(32, 128)
        a_xbar = crossbar_area_mm2(32, 128)
        assert abs(a_mdp - a_xbar) / a_xbar < 0.1

    def test_crossbar_logic_grows_quadratically(self):
        from repro.hw.power import crossbar_logic_area_mm2
        assert crossbar_logic_area_mm2(64) == pytest.approx(
            4 * crossbar_logic_area_mm2(32))

    def test_sec54_rows_match_paper(self):
        for row in sec54_rows():
            assert row["model_area_mm2"] == pytest.approx(row["paper_area_mm2"],
                                                          rel=0.02)
            assert row["model_power_mw"] == pytest.approx(row["paper_power_mw"],
                                                          rel=0.02)

    def test_bad_geometry_rejected(self):
        from repro.hw.power import buffer_area_mm2
        with pytest.raises(ConfigError):
            buffer_area_mm2(-1, 32)
