"""Performance-shape tests: the qualitative claims of the evaluation.

These do not pin exact GTEPS values (our substrate is a Python cycle
model, not the authors' RTL testbed) but assert the *relations* the
paper reports: who wins, roughly by how much, and which counters move.
Graphs are small enough for CI but large enough for steady-state
behaviour.
"""

import numpy as np
import pytest

from repro.accel import ablation, graphdyns, higraph, higraph_mini, simulate
from repro.algorithms import BFS, PageRank
from repro.graph import load


@pytest.fixture(scope="module")
def r14():
    # scaled R14 stand-in: same degree (64) and full-size hub share
    return load("R14", scale=0.0625)


@pytest.fixture(scope="module")
def ep():
    # low-degree social graph: stresses the front end
    return load("EP", scale=0.1)


@pytest.fixture(scope="module")
def results(r14):
    alg = lambda: PageRank(iterations=2)
    return {name: simulate(cfg, r14, alg())
            for name, cfg in [("GraphDynS", graphdyns()),
                              ("HiGraph-mini", higraph_mini()),
                              ("HiGraph", higraph())]}


class TestOverallResults:
    def test_higraph_beats_graphdyns(self, results):
        """Fig. 8: HiGraph achieves 1.19x-2.23x speedup over GraphDynS."""
        speedup = results["HiGraph"].stats.speedup_over(results["GraphDynS"].stats)
        assert 1.1 < speedup < 2.6

    def test_mini_beats_graphdyns(self, results):
        speedup = results["HiGraph-mini"].stats.speedup_over(
            results["GraphDynS"].stats)
        assert speedup > 1.05

    def test_higraph_at_least_mini(self, results):
        assert (results["HiGraph"].stats.total_cycles
                <= results["HiGraph-mini"].stats.total_cycles * 1.02)

    def test_throughput_below_ideal(self, results):
        """Fig. 9: nobody exceeds the 32 GTEPS ideal."""
        for res in results.values():
            assert res.gteps < 32.0

    def test_higraph_reaches_majority_of_ideal(self, results):
        """Fig. 9: HiGraph reaches a large fraction of ideal throughput
        (paper: up to 78.1%)."""
        assert results["HiGraph"].gteps > 0.55 * 32

    def test_starvation_reduced(self, results):
        """Fig. 10(b): optimizations cut vPE starvation (paper: ~58%)."""
        base = results["GraphDynS"].stats.vpe_starvation_cycles
        opt = results["HiGraph"].stats.vpe_starvation_cycles
        assert opt < base * 0.75

    def test_front_end_channels_matter_on_low_degree(self, ep):
        """More front-end channels pay off when mean degree is small
        (each vertex yields little back-end work): HiGraph > mini on EP."""
        mini = simulate(higraph_mini(), ep, BFS())
        full = simulate(higraph(), ep, BFS())
        assert full.stats.total_cycles < mini.stats.total_cycles * 0.95


class TestFig10Ablation:
    @pytest.fixture(scope="class")
    def steps(self, r14):
        alg = lambda: PageRank(iterations=2)
        configs = [
            ablation(),
            ablation(opt_o=True),
            ablation(opt_o=True, opt_e=True),
            ablation(opt_o=True, opt_e=True, opt_d=True),
        ]
        return [simulate(cfg, r14, alg()) for cfg in configs]

    def test_each_optimization_never_hurts(self, steps):
        cycles = [s.stats.total_cycles for s in steps]
        for before, after in zip(cycles, cycles[1:]):
            assert after <= before * 1.05

    def test_opt_d_gains_most_on_pr(self, steps):
        """Fig. 10(a): 'when using Opt-D ... the design gains more
        performance improvement' — the propagation site dominates."""
        g_o = steps[0].gteps
        g_oe = steps[2].gteps
        g_oed = steps[3].gteps
        assert (g_oed - g_oe) > (g_oe - g_o)

    def test_front_end_opts_do_not_help_pr(self, steps):
        """Fig. 10(a): 'the optimizations in front-end part almost gain
        no performance improvement on the PR algorithm'."""
        base, opt_o = steps[0], steps[1]
        assert abs(opt_o.stats.total_cycles
                   - base.stats.total_cycles) < 0.1 * base.stats.total_cycles

    def test_starvation_declines_along_ablation(self, steps):
        starv = [s.stats.vpe_starvation_cycles for s in steps]
        assert starv[-1] < starv[0]


class TestScalabilityShape:
    def test_higraph_scales_with_back_channels(self, r14):
        """Fig. 11 shape: more back-end channels -> more GTEPS for
        HiGraph (frequency holds at 1 GHz)."""
        g32 = simulate(higraph(back_channels=32), r14, PageRank(iterations=2))
        g64 = simulate(higraph(back_channels=64), r14, PageRank(iterations=2))
        assert g64.gteps > g32.gteps * 1.2

    def test_graphdyns_gains_little_from_64_channels(self, r14):
        """Fig. 11: GraphDynS's 64-port crossbar drops the frequency,
        eating the parallelism gain."""
        g32 = simulate(graphdyns(back_channels=32), r14, PageRank(iterations=2))
        g64 = simulate(graphdyns(back_channels=64), r14, PageRank(iterations=2))
        assert g64.gteps < g32.gteps * 1.35
        assert g64.stats.frequency_ghz < 0.8


class TestCountersSane:
    def test_edges_per_cycle_below_channel_count(self, results):
        for res in results.values():
            assert res.stats.edges_per_cycle <= 32.0

    def test_busy_plus_starved_equals_scatter_budget(self, r14):
        res = simulate(higraph(), r14, BFS())
        st = res.stats
        assert (st.vpe_busy_cycles + st.vpe_starvation_cycles
                == st.scatter_cycles * 32)

    def test_summary_fields(self, results):
        s = results["HiGraph"].stats.summary()
        assert s["config"] == "HiGraph"
        assert s["gteps"] > 0
        assert s["cycles"] > 0
