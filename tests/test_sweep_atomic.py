"""The atomic write-rename discipline every shared file rides on."""

import json
import os

import pytest

from repro.sweep.atomic import append_line, atomic_write_json, atomic_write_text


class TestAtomicWriteText:
    def test_writes_and_creates_parents(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "payload")
        assert target.read_text() == "payload"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_file_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failure_leaves_target_and_dir_clean(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("{\"old\": true}")
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert json.loads(target.read_text()) == {"old": True}
        assert os.listdir(tmp_path) == ["out.json"]


class TestAtomicWriteJson:
    def test_deterministic_bytes(self, tmp_path):
        p1, p2 = tmp_path / "one.json", tmp_path / "two.json"
        atomic_write_json(p1, {"b": 1, "a": 2})
        atomic_write_json(p2, {"a": 2, "b": 1})
        assert p1.read_bytes() == p2.read_bytes()
        assert p1.read_text().endswith("\n")

    def test_cache_entry_style_no_trailing_newline(self, tmp_path):
        target = tmp_path / "entry.json"
        atomic_write_json(target, {"k": 1}, indent=1, trailing_newline=False)
        assert not target.read_text().endswith("\n")


class TestAppendLine:
    def test_appends_one_record_per_call(self, tmp_path):
        log = tmp_path / "hist" / "bench.jsonl"
        append_line(log, json.dumps({"n": 1}))
        append_line(log, json.dumps({"n": 2}))
        lines = log.read_text().splitlines()
        assert [json.loads(x)["n"] for x in lines] == [1, 2]

    def test_rejects_embedded_newline(self, tmp_path):
        with pytest.raises(ValueError):
            append_line(tmp_path / "log", "two\nrecords")
