"""Tests for the terminal chart renderers."""

import pytest

from repro.bench import bar_chart, series_chart
from repro.errors import ConfigError


ROWS = [
    {"dataset": "VT", "design": "GraphDynS", "gteps": 10.0},
    {"dataset": "VT", "design": "HiGraph", "gteps": 20.0},
    {"dataset": "EP", "design": "GraphDynS", "gteps": 5.0},
    {"dataset": "EP", "design": "HiGraph", "gteps": 15.0},
]


class TestBarChart:
    def test_longest_bar_is_max_value(self):
        text = bar_chart(ROWS, "dataset", "gteps", group_key="design")
        lines = [l for l in text.splitlines() if "|" in l]
        bars = {l.split("|")[0].strip(): l.split("|")[1].count("█") for l in lines}
        assert bars["HiGraph/VT"] == max(bars.values())
        assert bars["GraphDynS/EP"] < bars["HiGraph/VT"]

    def test_values_printed(self):
        text = bar_chart(ROWS, "dataset", "gteps")
        assert "20.00" in text and "5.00" in text

    def test_title(self):
        text = bar_chart(ROWS, "dataset", "gteps", title="Fig. X")
        assert text.splitlines()[0] == "Fig. X"

    def test_proportionality(self):
        rows = [{"k": "a", "v": 10.0}, {"k": "b", "v": 5.0}]
        text = bar_chart(rows, "k", "v", width=40)
        lines = text.splitlines()
        assert lines[0].split("|")[1].count("█") == 40
        assert lines[1].split("|")[1].count("█") == 20

    def test_empty_rows(self):
        assert bar_chart([], "x", "y") == "(no data)\n"

    def test_missing_column_rejected(self):
        with pytest.raises(ConfigError):
            bar_chart(ROWS, "nope", "gteps")

    def test_zero_values_safe(self):
        rows = [{"k": "a", "v": 0.0}]
        text = bar_chart(rows, "k", "v")
        assert "0.00" in text


class TestSeriesChart:
    def test_groups_by_x(self):
        text = series_chart(ROWS, "dataset", "gteps", "design")
        assert "GraphDynS @ VT" in text
        assert "HiGraph @ EP" in text

    def test_blank_line_between_groups(self):
        text = series_chart(ROWS, "dataset", "gteps", "design")
        assert "\n\n" in text

    def test_empty(self):
        assert series_chart([], "x", "y", "s") == "(no data)\n"

    def test_works_on_fig11_shape(self):
        rows = [{"design": "HiGraph", "back_channels": c, "gteps": c / 2}
                for c in (32, 64, 128)]
        text = series_chart(rows, "back_channels", "gteps", "design")
        assert "HiGraph @ 32" in text
        assert "64.00" in text
