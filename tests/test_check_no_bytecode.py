"""Tests for the tracked-bytecode CI guard (scripts/check_no_bytecode.py)."""

import importlib.util
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"
_spec = importlib.util.spec_from_file_location(
    "check_no_bytecode", SCRIPTS / "check_no_bytecode.py")
cnb = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_no_bytecode", cnb)
_spec.loader.exec_module(cnb)


class TestBytecodePaths:
    def test_flags_pyc_and_pyo(self):
        assert cnb.bytecode_paths(["a.pyc", "b/c.pyo", "d.py"]) == [
            "a.pyc", "b/c.pyo"]

    def test_flags_pycache_directories_anywhere(self):
        paths = ["src/repro/__pycache__/engine.cpython-311.pyc",
                 "__pycache__/x.txt",
                 "deep/__pycache__/y.json"]
        assert cnb.bytecode_paths(paths) == paths

    def test_does_not_flag_lookalikes(self):
        assert cnb.bytecode_paths(["docs/pycache.md",
                                   "src/__pycache__x/ok.py",
                                   "notes/pyc.rst",
                                   "typed.pyi"]) == []

    def test_empty_input(self):
        assert cnb.bytecode_paths([]) == []


class TestMain:
    def test_clean_list_passes(self, capsys):
        assert cnb.main(["src/a.py", "README.md"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_tracked_bytecode_fails_with_diagnosis(self, capsys):
        assert cnb.main(["src/__pycache__/a.cpython-311.pyc", "b.py"]) == 1
        err = capsys.readouterr().err
        assert "src/__pycache__/a.cpython-311.pyc" in err
        assert "git rm --cached" in err

    @pytest.mark.skipif(shutil.which("git") is None, reason="git unavailable")
    def test_this_repository_is_clean(self):
        """The guard, run for real: the repo must never regress."""
        proc = subprocess.run(
            [sys.executable, str(SCRIPTS / "check_no_bytecode.py")],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
