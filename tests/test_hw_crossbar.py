"""Tests for the arbitrated crossbar (head-of-line blocking and all)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.hw import ArbitratedCrossbar


def drain(xbar, cycles, budget=None):
    out = []
    for _ in range(cycles):
        out.extend(xbar.tick(budget or [1] * xbar.num_outputs))
    return out


class TestBasics:
    def test_single_item_delivered(self):
        x = ArbitratedCrossbar(2, 2, fifo_depth=4)
        assert x.offer(0, 1, "payload")
        assert x.tick([1, 1]) == [(1, "payload")]

    def test_offer_to_full_input_refused(self):
        x = ArbitratedCrossbar(1, 1, fifo_depth=1)
        assert x.offer(0, 0, "a")
        assert not x.offer(0, 0, "b")

    def test_bad_dest_rejected(self):
        x = ArbitratedCrossbar(1, 2, fifo_depth=2)
        with pytest.raises(ConfigError):
            x.offer(0, 5, "x")

    def test_per_flow_order_preserved(self):
        x = ArbitratedCrossbar(1, 2, fifo_depth=8)
        for i in range(4):
            x.offer(0, 0, i)
        got = [p for _, p in drain(x, 6)]
        assert got == [0, 1, 2, 3]

    def test_one_output_one_item_per_cycle(self):
        x = ArbitratedCrossbar(4, 2, fifo_depth=4)
        for i in range(4):
            x.offer(i, 0, i)
        delivered = x.tick([1, 1])
        assert len(delivered) == 1           # all four compete for output 0
        assert x.conflicts == 3

    def test_budget_zero_blocks_output(self):
        x = ArbitratedCrossbar(2, 2, fifo_depth=4)
        x.offer(0, 0, "a")
        assert x.tick([0, 1]) == []
        assert x.conflicts == 1

    def test_head_of_line_blocking(self):
        """Input 0 queues [dest0, dest1]; output 0 is blocked, so the
        dest1 datum behind the head cannot move either — the behaviour
        MDP-network's per-stage buffering removes (§3.1)."""
        x = ArbitratedCrossbar(1, 2, fifo_depth=4)
        x.offer(0, 0, "head")
        x.offer(0, 1, "behind")
        delivered = x.tick([0, 1])          # output 0 unavailable
        assert delivered == []              # "behind" is HOL-blocked

    def test_round_robin_across_inputs(self):
        x = ArbitratedCrossbar(2, 1, fifo_depth=4)
        for i in range(2):
            x.offer(0, 0, f"a{i}")
            x.offer(1, 0, f"b{i}")
        got = [p for _, p in drain(x, 4)]
        assert set(got) == {"a0", "a1", "b0", "b1"}
        assert got[0][0] != got[1][0]       # alternating inputs

    def test_round_robin_fair_under_sustained_contention(self):
        """Regression: no input starves while every input keeps a full
        backlog for the same output.  The rotating-priority pointer must
        hand out grants in strict rotation, so over C cycles every input
        is served C/n +- 1 times."""
        n, cycles = 8, 80
        x = ArbitratedCrossbar(n, 1, fifo_depth=4)
        served = [0] * n
        for _ in range(cycles):
            for i in range(n):
                while not x.inputs[i].full:
                    x.offer(i, 0, i)
            for _, payload in x.tick([1]):
                served[payload] += 1
        assert sum(served) == cycles          # output saturated every cycle
        assert max(served) - min(served) <= 1, served
        assert min(served) >= cycles // n - 1, served

    def test_round_robin_fair_with_asymmetric_backlog(self):
        """A hub input pushing many items must not crowd out a sparse
        input contending for the same output (starvation freedom, not
        just long-run fairness)."""
        x = ArbitratedCrossbar(2, 1, fifo_depth=8)
        grants_between_sparse = []
        since_sparse = 0
        for cycle in range(60):
            while not x.inputs[0].full:
                x.offer(0, 0, "hub")
            if cycle % 2 == 0 and not x.inputs[1].full:
                x.offer(1, 0, "sparse")
            for _, payload in x.tick([1]):
                if payload == "sparse":
                    grants_between_sparse.append(since_sparse)
                    since_sparse = 0
                else:
                    since_sparse += 1
        assert grants_between_sparse, "sparse input starved completely"
        # with 2 inputs, a sparse head waits at most ~2 grants for its turn
        assert max(grants_between_sparse) <= 2, grants_between_sparse

    def test_drained_flag(self):
        x = ArbitratedCrossbar(2, 2, fifo_depth=2)
        assert x.drained
        x.offer(1, 0, "x")
        assert not x.drained
        x.tick([1, 1])
        assert x.drained


class TestThroughput:
    def test_uniform_traffic_saturation_below_ideal(self):
        """Classic HOL result: an n x n crossbar under uniform random
        saturating traffic delivers well below 1 item/output/cycle
        (asymptote ~0.586 for large n) — the paper's motivation for
        replacing the crossbar at the propagation site."""
        n, cycles = 16, 2000
        rng = np.random.default_rng(0)
        x = ArbitratedCrossbar(n, n, fifo_depth=8)
        delivered = 0
        for _ in range(cycles):
            for i in range(n):
                while not x.inputs[i].full:
                    x.offer(i, int(rng.integers(0, n)), None)
            delivered += len(x.tick([1] * n))
        rate = delivered / (cycles * n)
        assert 0.45 < rate < 0.85

    def test_identity_traffic_full_throughput(self):
        """Conflict-free (input i -> output i) traffic runs at line rate."""
        n, cycles = 8, 200
        x = ArbitratedCrossbar(n, n, fifo_depth=4)
        delivered = 0
        for _ in range(cycles):
            for i in range(n):
                if not x.inputs[i].full:
                    x.offer(i, i, None)
            delivered += len(x.tick([1] * n))
        assert delivered / (cycles * n) > 0.95

    @given(seed=st.integers(0, 99))
    @settings(max_examples=20, deadline=None)
    def test_conservation_no_loss_no_dup(self, seed):
        """Everything offered is delivered exactly once, to the right
        output, in per-(input,output) FIFO order."""
        rng = np.random.default_rng(seed)
        n = 4
        x = ArbitratedCrossbar(n, n, fifo_depth=4)
        sent, received = [], []
        uid = 0
        for _ in range(100):
            for i in range(n):
                if rng.random() < 0.7 and not x.inputs[i].full:
                    dest = int(rng.integers(0, n))
                    x.offer(i, dest, (i, dest, uid))
                    sent.append((i, dest, uid))
                    uid += 1
            received.extend(p for _, p in x.tick([1] * n))
        received.extend(p for _, p in drain(x, 200))
        assert sorted(received) == sorted(sent)
        # per-flow order
        for i in range(n):
            for d in range(n):
                flow_sent = [u for (s, t, u) in sent if s == i and t == d]
                flow_recv = [u for (s, t, u) in received if s == i and t == d]
                assert flow_recv == flow_sent
