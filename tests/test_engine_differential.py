"""Differential suite: every non-reference engine must be cycle-exact.

The equivalence contract (see ``repro.accel.engine``) is that the
``batched`` and ``soa`` engines produce **identical** ``SimStats`` —
every counter, not just totals — and identical result properties to the
``reference`` engine, for every configuration, graph and algorithm.
``assert_engines_agree`` runs *all* registered engines, so a fourth
engine joins the matrix by registering itself; failures report the
first diverging stats key plus a one-line reproducer.  This suite
enforces the contract over

* the tier-1 matrix: the three Table 1 designs x all five algorithms x
  structured + skewed graphs (every conflict-site implementation pair
  is exercised: mdp/crossbar offset, mdp/central edge, mdp/crossbar
  propagation, with and without vertex combining);
* randomized rmat / Erdos-Renyi / star / grid graphs;
* the sliced (large-graph) execution mode, including per-slice phase
  replay (each slice engine owns its own window memo);
* partially-repeating phases: frontend arbiter flips that either verify
  against the recorded emission stream (partial replay fires) or
  diverge (the phase falls back to full simulation) — byte-identical
  either way;
* engine-selection plumbing: defaults, the ``REPRO_ENGINE`` override,
  cache-token sharing, and the tracer's reference-only restriction.
"""

import numpy as np
import pytest

from repro.accel import (
    AcceleratorSim,
    PipelineTracer,
    SlicedAcceleratorSim,
    ablation,
    engine_cache_token,
    graphdyns,
    higraph,
    higraph_mini,
    resolve_engine,
    simulate,
)
from repro.accel.engine import DEFAULT_ENGINE, ENGINE_ENV_VAR, ENGINES
from repro.algorithms import make_algorithm, run_reference
from repro.errors import ConfigError, SimulationError
from repro.graph.generators import erdos_renyi, grid_2d, rmat, star
from repro.graph.partition import partition_by_destination

ALL_ALGORITHMS = ("BFS", "SSSP", "SSWP", "PR", "CC")


def _make_algorithm(name):
    if name == "PR":
        return make_algorithm("PR", iterations=2)
    return make_algorithm(name)


def first_divergence(expected, actual):
    """First ``SimStats.to_dict()`` key the two runs disagree on.

    Returns ``(key, expected_value, actual_value)`` or ``None`` when the
    dicts are identical.  Keys missing on either side count as diverging
    (value reported as the string ``"<absent>"``).
    """
    for key in list(expected) + [k for k in actual if k not in expected]:
        lhs = expected.get(key, "<absent>")
        rhs = actual.get(key, "<absent>")
        if lhs != rhs:
            return key, lhs, rhs
    return None


def divergence_message(engine, algorithm_name, graph, config, source,
                       ref_stats, other_stats, repro=None):
    """One-line failure report: first diverging key + a reproducer.

    ``repro`` overrides the reproducer line (the fuzzer passes its seed
    replay command); the default points at the closest CLI invocation.
    """
    div = first_divergence(ref_stats, other_stats)
    key, exp, got = div if div else ("<none>", "?", "?")
    if repro is None:
        repro = (f"PYTHONPATH=src python -m repro simulate "
                 f"--algorithm {algorithm_name} --engine {engine} "
                 f"--source {source}  # graph={graph.name} "
                 f"config={config.name}")
    return (f"SimStats diverge: reference vs {engine} for "
            f"{algorithm_name} on {graph.name} / {config.name}: "
            f"first diverging key {key!r}: reference={exp!r} "
            f"{engine}={got!r}\n  reproduce: {repro}")


def assert_engines_agree(config, graph, algorithm_name, source=0):
    """Run every registered engine; stats + properties must match the
    reference byte-for-byte.  Returns ``{engine: result}``."""
    results = {}
    for engine in ENGINES:
        results[engine] = simulate(config, graph,
                                   _make_algorithm(algorithm_name),
                                   source=source, engine=engine)
    ref = results["reference"]
    for engine, res in results.items():
        if engine == "reference":
            continue
        if res.stats.to_dict() != ref.stats.to_dict():
            pytest.fail(divergence_message(
                engine, algorithm_name, graph, config, source,
                ref.stats.to_dict(), res.stats.to_dict()))
        assert np.array_equal(ref.properties, res.properties), (
            f"properties diverge: reference vs {engine} for "
            f"{algorithm_name} on {graph.name} / {config.name}")
    return results


class TestTier1Matrix:
    """Three Table 1 designs x five algorithms on a skewed graph."""

    @pytest.fixture(scope="class")
    def skewed(self):
        return rmat(9, 8.0, seed=11, name="rmat9")

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    @pytest.mark.parametrize("maker", [higraph, higraph_mini, graphdyns],
                             ids=["HiGraph", "HiGraph-mini", "GraphDynS"])
    def test_matrix_cell(self, maker, algorithm, skewed):
        assert_engines_agree(maker(), skewed, algorithm)


class TestSiteAblations:
    """Every conflict-site implementation pair, one site at a time."""

    @pytest.fixture(scope="class")
    def graph(self):
        return rmat(8, 6.0, seed=5, name="rmat8")

    @pytest.mark.parametrize("opts", [
        dict(),
        dict(opt_o=True),
        dict(opt_e=True),
        dict(opt_d=True),
        dict(opt_o=True, opt_e=True, opt_d=True),
    ], ids=["baseline", "opt-o", "opt-e", "opt-d", "opt-oed"])
    def test_ablation_steps(self, opts, graph):
        assert_engines_agree(ablation(**opts), graph, "PR")

    def test_no_vertex_combining(self, graph):
        assert_engines_agree(higraph(vertex_combining=False), graph, "PR")
        assert_engines_agree(graphdyns(vertex_combining=False), graph, "SSSP")

    def test_odd_geometry(self, graph):
        """Radix 4, uneven dispatcher grouping, shallow queues."""
        cfg = higraph(front_channels=16, back_channels=16, radix=4,
                      fifo_depth=12, dispatcher_group=2, epe_queue_depth=2)
        assert_engines_agree(cfg, graph, "SSSP")

    def test_single_dispatcher(self, graph):
        """num_dispatchers == 1: the range network degenerates away."""
        cfg = higraph(back_channels=8, front_channels=8,
                      dispatcher_group=8)
        assert_engines_agree(cfg, graph, "BFS")


class TestRandomizedGraphs:
    """Random graph families x algorithms x both site stacks."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_rmat(self, algorithm, seed):
        graph = rmat(8, 5.0, seed=seed, name=f"rmat8-{seed}")
        assert_engines_agree(higraph(), graph, algorithm)
        assert_engines_agree(graphdyns(), graph, algorithm)

    @pytest.mark.parametrize("seed", [7, 8])
    @pytest.mark.parametrize("algorithm", ("BFS", "SSSP", "PR"))
    def test_erdos_renyi(self, algorithm, seed):
        graph = erdos_renyi(300, 2400, seed=seed, name=f"er-{seed}")
        assert_engines_agree(higraph(), graph, algorithm)
        assert_engines_agree(graphdyns(), graph, algorithm)

    @pytest.mark.parametrize("algorithm", ("BFS", "SSWP", "CC"))
    def test_star(self, algorithm):
        """One hub fanning out: the propagation hotspot worst case."""
        graph = star(200)
        assert_engines_agree(higraph(), graph, algorithm)
        assert_engines_agree(higraph_mini(), graph, algorithm)

    @pytest.mark.parametrize("algorithm", ("BFS", "SSSP", "CC"))
    def test_grid(self, algorithm):
        """Long-diameter grid: many sparse-frontier iterations."""
        graph = grid_2d(12, 12)
        assert_engines_agree(higraph(), graph, algorithm)
        assert_engines_agree(graphdyns(), graph, algorithm)

    @pytest.mark.parametrize("seed", [3])
    def test_matches_golden_model(self, seed):
        """Both engines also equal the functional golden model.

        Min/max-reduce algorithms are order-insensitive, so they match
        bit-exactly; PR sums in hardware delivery order, which differs
        from the golden model's vectorized summation at ULP level only.
        """
        graph = rmat(8, 5.0, seed=seed, name=f"rmat8-{seed}")
        for algorithm in ALL_ALGORITHMS:
            bat = simulate(higraph(), graph, _make_algorithm(algorithm),
                           engine="batched")
            golden = run_reference(graph, _make_algorithm(algorithm), source=0)
            if algorithm == "PR":
                np.testing.assert_allclose(bat.properties, golden.properties,
                                           rtol=1e-12, atol=0)
            else:
                np.testing.assert_array_equal(bat.properties, golden.properties)

    def test_nonzero_source(self):
        graph = rmat(8, 5.0, seed=9, name="rmat8-9")
        assert_engines_agree(higraph(), graph, "BFS", source=37)
        assert_engines_agree(graphdyns(), graph, "SSSP", source=101)


class TestSlicedMode:
    def test_sliced_equivalence(self):
        graph = rmat(8, 6.0, seed=13, name="rmat8-13")
        slices = partition_by_destination(graph, 3)
        results = {}
        for engine in ENGINES:
            sim = SlicedAcceleratorSim(higraph(), graph,
                                       _make_algorithm("SSSP"),
                                       slices=slices, engine=engine)
            results[engine] = sim.run(source=0)
        for engine in ENGINES:
            assert (results[engine].stats.to_dict()
                    == results["reference"].stats.to_dict()), engine
            assert np.array_equal(results[engine].properties,
                                  results["reference"].properties), engine


class TestEngineSelection:
    def test_registry_and_default(self):
        assert set(ENGINES) == {"reference", "batched", "soa"}
        assert DEFAULT_ENGINE in ENGINES
        assert resolve_engine("Reference") == "reference"
        assert resolve_engine(None) in ENGINES

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            resolve_engine("warp-10")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
        assert resolve_engine(None) == "reference"
        graph = star(8)
        assert AcceleratorSim(higraph(), graph,
                              _make_algorithm("BFS")).engine_name == "reference"
        monkeypatch.setenv(ENGINE_ENV_VAR, "batched")
        assert resolve_engine(None) == "batched"

    def test_engines_share_cache_token(self):
        """Verified-equivalent engines must alias their cache entries."""
        assert engine_cache_token("reference") == engine_cache_token("batched")
        assert engine_cache_token("soa") == engine_cache_token("batched")

    def test_engine_choice_does_not_change_cache_key(self):
        from repro.sweep import SweepJob
        graph = star(8)
        keys = {SweepJob(graph=graph, algorithm="BFS", config=higraph(),
                         engine=engine).cache_key("v0")
                for engine in (None, "reference", "batched", "soa")}
        assert len(keys) == 1

    def test_tracer_forces_reference(self):
        graph = star(16)
        sim = AcceleratorSim(higraph(), graph, _make_algorithm("BFS"),
                             tracer=PipelineTracer())
        assert sim.engine_name == "reference"
        with pytest.raises(SimulationError):
            AcceleratorSim(higraph(), graph, _make_algorithm("BFS"),
                           tracer=PipelineTracer(), engine="batched")

    def test_explicit_engine_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
        graph = star(8)
        sim = AcceleratorSim(higraph(), graph, _make_algorithm("BFS"),
                             engine="batched")
        assert sim.engine_name == "batched"


class TestWindowBoundaries:
    """Adversarial cases for the event-driven fast-forward layer.

    The batched engine picks a probe-free no-backpressure variant per
    cycle (total in flight under the FIFO block line), bulk
    fast-forwards contention-free drains, and replays whole recorded
    phases for all-active algorithms (``repro.accel.engine.windows``).
    These configurations force every boundary: windows that open and
    close mid-drain, combining on the last pre-window cycle, minimum
    depths where backpressure never clears, and arbiter states that
    invalidate a recorded phase.
    """

    @pytest.fixture(scope="class")
    def hub(self):
        # one hot destination: maximum combining + deep hot queues
        return star(150)

    @pytest.fixture(scope="class")
    def skewed(self):
        return rmat(8, 6.0, seed=23, name="rmat8-23")

    def test_minimum_depth_never_leaves_backpressure(self, skewed):
        """fifo_depth == radix: the block line is zero, every nonempty
        FIFO rejects, and the checked path runs end to end."""
        cfg = higraph(fifo_depth=2, radix=2)
        assert_engines_agree(cfg, skewed, "SSSP")
        assert_engines_agree(cfg, skewed, "PR")

    @pytest.mark.parametrize("depth", [3, 5, 11])
    def test_window_opens_and_closes_mid_phase(self, depth, skewed):
        """Shallow FIFOs keep the in-flight total crossing the block
        line, flipping between the no-backpressure and checked variants
        many times per phase (including mid-drain)."""
        cfg = higraph(fifo_depth=depth, epe_queue_depth=2, fe_out_depth=2)
        assert_engines_agree(cfg, skewed, "BFS")
        assert_engines_agree(cfg, skewed, "SSWP")

    def test_combining_on_the_last_prewindow_cycle(self, hub):
        """A hot-vertex drain merges records right up to the cycle the
        no-backpressure window opens; counters must not skew."""
        for depth in (4, 8, 160):
            assert_engines_agree(higraph(fifo_depth=depth), hub, "PR")
            assert_engines_agree(higraph_mini(fifo_depth=depth), hub, "CC")

    def test_combining_disabled_at_small_depth(self, hub):
        cfg = higraph(vertex_combining=False, fifo_depth=4)
        assert_engines_agree(cfg, hub, "PR")

    def test_central_and_crossbar_sites_at_small_depth(self, skewed):
        """GraphDynS-style sites under constant backpressure."""
        cfg = graphdyns(fifo_depth=3, epe_queue_depth=2)
        assert_engines_agree(cfg, skewed, "SSSP")
        assert_engines_agree(cfg, skewed, "PR")

    def test_phase_replay_fires_and_stays_exact(self, skewed):
        """All-active phases replay from the recorded window (the memo
        genuinely fires) and the result stays byte-identical."""
        alg = make_algorithm("PR", iterations=6)
        sim = AcceleratorSim(higraph_mini(), skewed, alg, engine="batched")
        result = sim.run(source=0)
        assert sim.engine.ffwd_windows > 0, (
            "phase memo never replayed — the structural window "
            "analyzer regressed")
        ref = simulate(higraph_mini(), skewed,
                       make_algorithm("PR", iterations=6),
                       source=0, engine="reference")
        assert result.stats.to_dict() == ref.stats.to_dict()
        assert np.array_equal(result.properties, ref.properties)

    def test_phase_replay_respects_arbiter_state(self, skewed):
        """Configs whose arbiter state does not return to its start
        must simply miss the memo — never replay a stale window."""
        for maker in (higraph, graphdyns):
            assert_engines_agree(maker(), skewed, "PR")

    def test_sliced_mode_with_shallow_fifos(self):
        graph = rmat(8, 6.0, seed=29, name="rmat8-29")
        slices = partition_by_destination(graph, 3)
        cfg = higraph(fifo_depth=5, epe_queue_depth=2)
        results = {}
        for engine in ENGINES:
            sim = SlicedAcceleratorSim(cfg, graph, _make_algorithm("PR"),
                                       slices=slices, engine=engine)
            results[engine] = sim.run(source=0)
        for engine in ENGINES:
            assert (results[engine].stats.to_dict()
                    == results["reference"].stats.to_dict()), engine
            assert np.array_equal(results[engine].properties,
                                  results["reference"].properties), engine

    @pytest.mark.parametrize("seed", [41, 42])
    def test_randomized_graphs_at_window_boundary_depths(self, seed):
        graph = rmat(7, 7.0, seed=seed, name=f"rmat7-{seed}")
        for depth in (2, 6):
            cfg = higraph(front_channels=8, back_channels=8,
                          fifo_depth=depth, dispatcher_group=2)
            for algorithm in ("BFS", "SSSP", "PR"):
                assert_engines_agree(cfg, graph, algorithm)


class TestDegenerateGeometries:
    """Minimal and lopsided networks every engine must survive.

    The smallest legal MDP geometry is two channels at radix 2 (one
    stage, one switch; a single-channel MDP network is a ConfigError),
    and the smallest legal FIFO is ``fifo_depth == radix`` — both
    boundary the SoA kernel's ring indexing at occupancy == capacity.
    """

    @pytest.fixture(scope="class")
    def small(self):
        return rmat(7, 5.0, seed=17, name="rmat7-17")

    def test_two_channel_minimum_network(self, small):
        cfg = higraph().with_(front_channels=2, back_channels=2, radix=2,
                              fifo_depth=2, dispatcher_group=1)
        assert_engines_agree(cfg, small, "BFS")
        assert_engines_agree(cfg, small, "PR")

    def test_single_channel_mdp_rejected_for_every_engine(self):
        graph = star(16)
        with pytest.raises(ConfigError):
            cfg = higraph(front_channels=1, back_channels=1)
            for engine in ENGINES:
                simulate(cfg, graph, _make_algorithm("BFS"), engine=engine)

    def test_single_part_frontends(self):
        """A frontier smaller than the channel count: most channels get
        zero parts, the rest exactly one (the part-stream degenerate
        case — each channel's lazy piece iterator yields at most once)."""
        graph = grid_2d(5, 5)
        cfg = higraph(front_channels=16, back_channels=16)
        assert_engines_agree(cfg, graph, "BFS")
        assert_engines_agree(cfg, graph, "SSSP", source=24)

    def test_depth_one_issue_and_output_queues(self, small):
        cfg = higraph(issue_queue_depth=1, fe_out_depth=1,
                      epe_queue_depth=1)
        assert_engines_agree(cfg, small, "SSSP")


class TestEngineAlternation:
    """Engines must coexist in one process without leaking state."""

    def test_ffwd_telemetry_does_not_leak_across_engines(self):
        """FFWD_TELEMETRY is zeroed at engine construction, so each
        run's numbers stand alone even when engines alternate."""
        from repro.accel.engine import FFWD_TELEMETRY
        graph = rmat(7, 5.0, seed=17, name="rmat7-17")

        def run(engine):
            simulate(higraph(), graph, _make_algorithm("PR"),
                     engine=engine)
            return dict(FFWD_TELEMETRY)

        first_soa = run("soa")
        assert first_soa["cycles_simulated"] > 0
        run("batched")
        run("reference")  # must not disturb the shared dict shape
        again_soa = run("soa")
        assert again_soa == first_soa, (
            "FFWD_TELEMETRY leaked across engine alternation")

    def test_soa_without_kernel_degrades_to_batched(self, monkeypatch):
        """No compiled kernel (``REPRO_SOA_KERNEL=off`` or no compiler)
        must leave the soa engine byte-identical via the inherited
        batched march."""
        import repro.accel.engine.soa as soa_module
        monkeypatch.setattr(soa_module, "load_kernel", lambda: None)
        graph = rmat(7, 5.0, seed=17, name="rmat7-17")
        for algorithm in ("SSSP", "PR"):
            bare = simulate(higraph(), graph, _make_algorithm(algorithm),
                            engine="soa")
            ref = simulate(higraph(), graph, _make_algorithm(algorithm),
                           engine="reference")
            assert bare.stats.to_dict() == ref.stats.to_dict()
            assert np.array_equal(bare.properties, ref.properties)

    def test_reachability_fuzzes_through_soa(self):
        """REACH declares max-reduce with an identity process kernel —
        the sixth algorithm exercises the proc=0 kernel path."""
        graph = rmat(7, 5.0, seed=17, name="rmat7-17")
        ref = simulate(higraph(), graph, make_algorithm("REACH"),
                       engine="reference")
        for engine in ("batched", "soa"):
            res = simulate(higraph(), graph, make_algorithm("REACH"),
                           engine=engine)
            assert res.stats.to_dict() == ref.stats.to_dict(), engine
            assert np.array_equal(ref.properties, res.properties)


class TestPartialRepeat:
    """Partially-repeating phases: per-subnetwork window keys.

    A phase whose edge+propagation arbiter segments match a recorded
    program but whose frontend segment does not is replayed by
    re-simulating *only* the frontend against the recorded pull
    schedule.  A verified emission match commits the recorded
    downstream segments; a divergence falls back to full simulation.
    Either way the result must be byte-identical to the reference
    engine — these cases pin both paths and the telemetry.
    """

    def test_frontend_flip_partial_replay_fires(self):
        """Rotating-scan frontend drift over a stable MDP propagation
        site, lockstep (uniform-degree) channels: the shadow-frontend
        replay must fire and stay byte-identical."""
        graph = grid_2d(12, 12)
        cfg = ablation(opt_d=True)
        alg = make_algorithm("PR", iterations=6)
        sim = AcceleratorSim(cfg, graph, alg, engine="batched")
        result = sim.run(source=0)
        assert sim.engine.ffwd_partial_windows > 0, (
            "frontend-flip phase never partial-replayed — the "
            "per-subnetwork key machinery regressed")
        ref = simulate(cfg, graph, make_algorithm("PR", iterations=6),
                       source=0, engine="reference")
        assert result.stats.to_dict() == ref.stats.to_dict()
        assert np.array_equal(result.properties, ref.properties)

    def test_ablation_sites_replay_and_stay_identical(self):
        """Mixed-site ablation configs (the Fig. 10 steps) replay too
        once their arbiter states prove periodic."""
        graph = grid_2d(12, 12)
        cfg = ablation(opt_e=True, opt_d=True, front_channels=16,
                       back_channels=16)
        alg = make_algorithm("PR", iterations=6)
        sim = AcceleratorSim(cfg, graph, alg, engine="batched")
        result = sim.run(source=0)
        assert sim.engine.ffwd_windows > 0
        ref = simulate(cfg, graph, make_algorithm("PR", iterations=6),
                       source=0, engine="reference")
        assert result.stats.to_dict() == ref.stats.to_dict()
        assert np.array_equal(result.properties, ref.properties)

    def test_divergent_frontend_falls_back_to_full_simulation(self):
        """A parity flip that genuinely changes the emission stream must
        be *rejected* by the shadow verification, never spliced."""
        graph = rmat(8, 6.0, seed=23, name="rmat8-23")
        alg = make_algorithm("PR", iterations=8)
        sim = AcceleratorSim(higraph(), graph, alg, engine="batched")
        result = sim.run(source=0)
        memo = sim.engine.phase_memo
        assert memo is not None
        # skewed degrees stagger the channels, so the flipped phase
        # diverges and is remembered as a failed pair
        assert memo.partial_failures > 0
        ref = simulate(higraph(), graph, make_algorithm("PR", iterations=8),
                       source=0, engine="reference")
        assert result.stats.to_dict() == ref.stats.to_dict()
        assert np.array_equal(result.properties, ref.properties)

    def test_multi_state_memo_replays_periodic_arbiter_states(self):
        """Odd-length phases flip the odd-even parity every phase; the
        memo must record both states once they prove periodic and
        replay afterwards instead of missing forever (the old
        single-program behavior)."""
        graph = rmat(8, 6.0, seed=23, name="rmat8-23")
        alg = make_algorithm("PR", iterations=8)
        sim = AcceleratorSim(higraph(), graph, alg, engine="batched")
        sim.run(source=0)
        assert sim.engine.ffwd_windows > 0, (
            "multi-state memo never replayed a periodic arbiter state")

    @pytest.mark.parametrize("maker", [higraph, graphdyns, higraph_mini],
                             ids=["HiGraph", "GraphDynS", "HiGraph-mini"])
    def test_long_pr_runs_stay_identical(self, maker):
        """Many iterations exercise record → partial → derived-program
        chains; every counter must still match the reference."""
        graph = erdos_renyi(300, 2400, seed=7, name="er-7")
        ref = simulate(maker(), graph, make_algorithm("PR", iterations=8),
                       engine="reference")
        bat = simulate(maker(), graph, make_algorithm("PR", iterations=8),
                       engine="batched")
        assert bat.stats.to_dict() == ref.stats.to_dict()
        assert np.array_equal(ref.properties, bat.properties)


class TestSlicedReplay:
    """Per-slice phase programs: each slice engine owns its own memo and
    re-presents the same frontier every iteration, so sliced all-active
    runs must hit replay from iteration 2 onward — per slice — while
    staying byte-identical to the reference engine."""

    @pytest.mark.parametrize("maker", [higraph, graphdyns, higraph_mini],
                             ids=["HiGraph", "GraphDynS", "HiGraph-mini"])
    def test_replay_fires_on_every_slice(self, maker):
        graph = rmat(8, 6.0, seed=13, name="rmat8-13")
        slices = partition_by_destination(graph, 3)
        results = {}
        sims = {}
        for engine in ENGINES:
            sim = SlicedAcceleratorSim(maker(), graph,
                                       make_algorithm("PR", iterations=6),
                                       slices=slices, engine=engine)
            sims[engine] = sim
            results[engine] = sim.run(source=0)
        assert (results["batched"].stats.to_dict()
                == results["reference"].stats.to_dict())
        assert np.array_equal(results["batched"].properties,
                              results["reference"].properties)
        for index, slice_sim in enumerate(sims["batched"].slice_sims):
            assert slice_sim.engine.ffwd_windows > 0, (
                f"slice {index} never replayed a phase — per-slice "
                "window keying regressed")

    def test_sliced_partial_replay_fires(self):
        """The rotating-scan frontend drifts per slice too; the shadow
        replay must fire inside sliced mode."""
        graph = rmat(8, 6.0, seed=13, name="rmat8-13")
        slices = partition_by_destination(graph, 3)
        sim = SlicedAcceleratorSim(graphdyns(), graph,
                                   make_algorithm("PR", iterations=6),
                                   slices=slices, engine="batched")
        sim.run(source=0)
        assert any(s.engine.ffwd_partial_windows > 0
                   for s in sim.slice_sims)


class TestFastForwardTelemetry:
    def test_probe_telemetry_counts_windows_and_cycles(self):
        from repro.accel.engine import FFWD_TELEMETRY, reset_ffwd_telemetry
        telemetry = reset_ffwd_telemetry()
        assert telemetry == {"windows": 0, "cycles_fast_forwarded": 0,
                             "cycles_simulated": 0, "events": 0,
                             "partial_windows": 0,
                             "front_cycles_resimulated": 0,
                             "c_recorded_phases": 0, "prologue_reuse": 0}
        graph = rmat(8, 6.0, seed=23, name="rmat8-23")
        simulate(higraph_mini(), graph, make_algorithm("PR", iterations=6),
                 engine="batched")
        assert FFWD_TELEMETRY["cycles_simulated"] > 0
        assert FFWD_TELEMETRY["windows"] > 0
        assert FFWD_TELEMETRY["cycles_fast_forwarded"] > 0
        assert FFWD_TELEMETRY["events"] > 0
        reset_ffwd_telemetry()

    def test_two_back_to_back_runs_do_not_leak_counters(self):
        """FFWD_TELEMETRY is zeroed at the start of every batched-engine
        run, so a run's numbers never include a previous run's."""
        from repro.accel.engine import FFWD_TELEMETRY
        graph = rmat(8, 6.0, seed=23, name="rmat8-23")
        simulate(higraph_mini(), graph, make_algorithm("PR", iterations=6),
                 engine="batched")
        first = dict(FFWD_TELEMETRY)
        simulate(higraph_mini(), graph, make_algorithm("PR", iterations=6),
                 engine="batched")
        assert dict(FFWD_TELEMETRY) == first, (
            "telemetry leaked across runs — identical back-to-back runs "
            "must report identical (not accumulated) counters")
        assert first["windows"] > 0      # and the run genuinely replayed

    def test_reference_engine_does_not_touch_telemetry(self):
        from repro.accel.engine import FFWD_TELEMETRY, reset_ffwd_telemetry
        reset_ffwd_telemetry()
        graph = star(32)
        simulate(higraph(), graph, _make_algorithm("BFS"),
                 engine="reference")
        assert FFWD_TELEMETRY["cycles_simulated"] == 0


class TestBackendStateIsolation:
    """Regression: site-③ sink vectors must be per-instance.

    ``backend.py`` used to hand ``MdpNetworkSim.deliver`` and
    ``ArbitratedCrossbar.tick`` module-level shared *mutable* lists; a
    consumer mutation corrupted every other live simulator of the same
    width.  They are per-instance immutable tuples now.
    """

    def test_no_shared_module_state(self):
        import repro.accel.backend as backend
        assert not hasattr(backend, "_ALL_READY")
        assert not hasattr(backend, "_UNIT_BUDGET")

    def test_mdp_sink_vector_is_private_and_immutable(self):
        from repro.accel.backend import MdpPropagation
        a = MdpPropagation(higraph())
        b = MdpPropagation(higraph())
        assert a.sink_ready is not b.sink_ready
        with pytest.raises(TypeError):
            a.sink_ready[0] = False

    def test_crossbar_budget_is_private_and_immutable(self):
        from repro.accel.backend import CrossbarPropagation
        a = CrossbarPropagation(graphdyns())
        b = CrossbarPropagation(graphdyns())
        assert a.unit_budget is not b.unit_budget
        with pytest.raises(TypeError):
            a.unit_budget[0] = 0

    def test_two_interleaved_sims_do_not_alias(self):
        """Interleaving two live simulators must equal running each
        alone — the historical failure mode of the shared vectors."""
        graph = rmat(7, 5.0, seed=21, name="rmat7-21")
        solo = [simulate(higraph(), graph, _make_algorithm("BFS"),
                         engine="reference").stats.to_dict(),
                simulate(graphdyns(), graph, _make_algorithm("BFS"),
                         engine="reference").stats.to_dict()]
        sims = [AcceleratorSim(higraph(), graph, _make_algorithm("BFS"),
                               engine="reference"),
                AcceleratorSim(graphdyns(), graph, _make_algorithm("BFS"),
                               engine="reference")]
        # poke one sim's sink vector usage by running them turn-about
        results = [sim.run(source=0).stats.to_dict() for sim in sims]
        assert results == solo


class TestInKernelRecording:
    """C-recorded vs Python-recorded phase programs (ABI 2).

    The soa engine records phases inside the compiled kernel: slot-id
    companion rings shadow the real float march, and the assembled
    :class:`PhaseProgram` must be interchangeable with one the Python
    recording shims would have produced for the same phase — same
    structure log, same deltas, same end state — and programs of both
    origins must replay side by side in one run.
    """

    @staticmethod
    def _per_dv(prog):
        ordered = {}
        for dv, s in zip(prog.deliver_dv, prog.deliver_slots):
            ordered.setdefault(dv, []).append(s)
        return ordered

    def _memo_programs(self, engine_name, iterations=6):
        graph = rmat(8, 6.0, seed=23, name="rmat8-23")
        sim = AcceleratorSim(graphdyns(), graph,
                             make_algorithm("PR", iterations=iterations),
                             engine=engine_name)
        result = sim.run(source=0)
        return sim.engine.phase_memo.programs, result

    def test_c_recorded_programs_equal_python_recorded(self):
        c_programs, c_res = self._memo_programs("soa")
        py_programs, py_res = self._memo_programs("batched")
        assert c_res.stats.to_dict() == py_res.stats.to_dict()
        assert set(c_programs) == set(py_programs)
        assert c_programs, "no phase was recorded at all"
        for key, cp in c_programs.items():
            pp = py_programs[key]
            assert np.array_equal(np.asarray(cp.news_e),
                                  np.asarray(pp.news_e))
            assert list(cp.merge_a) == list(pp.merge_a)
            assert list(cp.merge_b) == list(pp.merge_b)
            # Delivery logs may interleave channels differently (the
            # batched engine bulk-drains queue by queue; the kernel
            # ticks cycle by cycle) but each destination vertex lives
            # on one channel, so the per-dv slot subsequence — the part
            # the value pass is sensitive to — must match exactly.
            assert self._per_dv(cp) == self._per_dv(pp)
            assert np.array_equal(cp.leaf_u, pp.leaf_u)
            assert cp.stat_deltas == pp.stat_deltas
            assert cp.counter_deltas == pp.counter_deltas
            assert cp.end_state == pp.end_state
            assert cp.cycles == pp.cycles

    def test_c_front_trace_is_the_skip_expansion_of_python_trace(self):
        """A C trace has no skips — idle frontend ticks stand in for the
        Python recorder's bulk-drain ``skip(k)`` entries.  Expanding the
        Python trace's skips into empty ticks must reproduce the C trace
        exactly (same pulls, same retires, cycle for cycle)."""
        c_programs, _ = self._memo_programs("soa")
        py_programs, _ = self._memo_programs("batched")
        compared = 0
        for key, cp in c_programs.items():
            ct, pt = cp.front_trace, py_programs[key].front_trace
            if ct.skips:        # soa fell back to Python recording
                continue
            exp_pulls, exp_retires = list(pt.pulls), list(pt.retires)
            for t, k in sorted(pt.skips, reverse=True):
                exp_pulls[t:t] = [()] * k
                exp_retires[t:t] = [()] * k
            assert list(ct.pulls) == exp_pulls
            assert list(ct.retires) == exp_retires
            compared += 1
        from repro.accel.engine.soakernel import load_kernel, record_disabled
        if load_kernel() is not None and not record_disabled():
            assert compared > 0

    def test_mixed_c_and_python_recordings_in_one_run(self):
        """Alternate the recorder per phase: programs recorded in C and
        in Python coexist in one memo and replay interchangeably."""
        graph = rmat(8, 6.0, seed=29, name="rmat8-29")
        ref = simulate(graphdyns(), graph,
                       make_algorithm("PR", iterations=10),
                       engine="reference")
        sim = AcceleratorSim(graphdyns(), graph,
                             make_algorithm("PR", iterations=10),
                             engine="soa")
        eng = sim.engine
        orig_scatter = eng.scatter
        record_ok = eng._record_ok   # buffers exist only when this is set
        calls = {"n": 0}

        def alternating_scatter(*args, **kwargs):
            eng._record_ok = record_ok and calls["n"] % 2 == 0
            calls["n"] += 1
            return orig_scatter(*args, **kwargs)

        eng.scatter = alternating_scatter
        res = sim.run(source=0)
        assert res.stats.to_dict() == ref.stats.to_dict()
        assert np.array_equal(res.properties, ref.properties)
