"""Golden-model tests: VCPM reference engine vs independent oracles.

BFS/SSSP are checked against networkx; SSWP against a hand-rolled
maximin Dijkstra; PageRank against an independent dense power iteration.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    BFS,
    SSSP,
    SSWP,
    PageRank,
    expected_iteration_plan,
    make_algorithm,
    run_reference,
)
from repro.errors import ConfigError, SimulationError
from repro.graph import CSRGraph, chain, erdos_renyi, inverse_star, rmat, star


def to_networkx(g: CSRGraph) -> nx.DiGraph:
    ng = nx.DiGraph()
    ng.add_nodes_from(range(g.num_vertices))
    for s, d, w in g.edges():
        if ng.has_edge(s, d):
            # keep the smallest parallel weight: matches min-reduce semantics
            w = min(w, ng[s][d]["weight"])
        ng.add_edge(s, d, weight=w)
    return ng


def sswp_oracle(g: CSRGraph, source: int) -> np.ndarray:
    """Maximin widest path via a Dijkstra variant (independent of VCPM)."""
    import heapq
    width = np.zeros(g.num_vertices)
    width[source] = np.inf
    heap = [(-np.inf, source)]
    done = np.zeros(g.num_vertices, dtype=bool)
    while heap:
        negw, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for d, w in zip(g.neighbors(u), g.out_weights(u)):
            cand = min(width[u], w)
            if cand > width[d]:
                width[d] = cand
                heapq.heappush(heap, (-cand, d))
    return width


GRAPHS = {
    "chain": chain(10),
    "star": star(6),
    "inverse-star": inverse_star(6),
    "er": erdos_renyi(60, 300, seed=5),
    "rmat": rmat(7, 6.0, seed=6),
}


@pytest.mark.parametrize("gname", list(GRAPHS))
class TestAgainstOracles:
    def test_bfs_matches_networkx(self, gname):
        g = GRAPHS[gname]
        res = run_reference(g, BFS(), source=0)
        lengths = nx.single_source_shortest_path_length(to_networkx(g), 0)
        for v in range(g.num_vertices):
            expected = lengths.get(v, np.inf)
            assert res.properties[v] == expected, f"vertex {v}"

    def test_sssp_matches_networkx(self, gname):
        g = GRAPHS[gname]
        res = run_reference(g, SSSP(), source=0)
        lengths = nx.single_source_dijkstra_path_length(to_networkx(g), 0)
        for v in range(g.num_vertices):
            expected = lengths.get(v, np.inf)
            assert res.properties[v] == expected, f"vertex {v}"

    def test_sswp_matches_maximin_dijkstra(self, gname):
        g = GRAPHS[gname]
        res = run_reference(g, SSWP(), source=0)
        oracle = sswp_oracle(g, 0)
        assert np.array_equal(res.properties, oracle)

    def test_pagerank_matches_power_iteration(self, gname):
        g = GRAPHS[gname]
        iters, d = 15, 0.85
        res = run_reference(g, PageRank(damping=d, iterations=iters), source=0)
        # independent dense power iteration (no mass redistribution for
        # dangling vertices — same formulation as the VCPM kernels)
        v = g.num_vertices
        rank = np.full(v, 1.0 / v)
        deg = np.maximum(g.out_degree(), 1)
        srcs = g.edge_sources()
        for _ in range(iters):
            contrib = np.zeros(v)
            np.add.at(contrib, g.dst, rank[srcs] / deg[srcs])
            rank = (1 - d) / v + d * contrib
        assert np.allclose(res.properties, rank, rtol=1e-10, atol=1e-15)


class TestSemantics:
    def test_bfs_levels_iterate_by_frontier(self):
        res = run_reference(chain(5), BFS(), source=0)
        # chain: frontier advances one vertex per iteration, converging
        # when the final apply changes nothing
        actives = [list(t.active_vertices) for t in res.iterations]
        assert actives == [[0], [1], [2], [3], [4]]

    def test_edges_traversed_counts_out_degree_of_active(self):
        g = star(4)
        res = run_reference(g, BFS(), source=0)
        assert res.iterations[0].edges_traversed == 4

    def test_pr_runs_fixed_iterations_all_active(self):
        g = erdos_renyi(30, 100, seed=2)
        res = run_reference(g, PageRank(iterations=4), source=0)
        assert res.num_iterations == 4
        for t in res.iterations:
            assert len(t.active_vertices) == g.num_vertices

    def test_max_iterations_override(self):
        res = run_reference(chain(10), BFS(), source=0, max_iterations=2)
        assert res.num_iterations == 2

    def test_unreachable_stays_infinite(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        res = run_reference(g, BFS(), source=0)
        assert res.properties[2] == np.inf

    def test_source_out_of_range(self):
        with pytest.raises(SimulationError):
            run_reference(chain(3), BFS(), source=7)

    def test_empty_graph(self):
        g = CSRGraph.from_edges(0, [])
        res = run_reference(g, BFS(), source=0)
        assert res.properties.size == 0

    def test_sswp_rejects_zero_weights(self):
        g = CSRGraph.from_edges(2, [(0, 1)], [0])
        with pytest.raises(ConfigError):
            run_reference(g, SSWP(), source=0)

    def test_sssp_rejects_negative_weights(self):
        g = CSRGraph.from_edges(2, [(0, 1)], [-1])
        with pytest.raises(ConfigError):
            run_reference(g, SSSP(), source=0)

    def test_expected_iteration_plan_matches_trace(self):
        g = erdos_renyi(40, 160, seed=3)
        plan = expected_iteration_plan(g, BFS(), source=0)
        res = run_reference(g, BFS(), source=0)
        assert len(plan) == res.num_iterations
        for p, t in zip(plan, res.iterations):
            assert np.array_equal(p, t.active_vertices)

    def test_make_algorithm_roster(self):
        assert make_algorithm("bfs").name == "BFS"
        assert make_algorithm("SSSP").name == "SSSP"
        assert make_algorithm("sswp").name == "SSWP"
        assert make_algorithm("PR", iterations=3).default_iterations == 3
        with pytest.raises(ValueError):
            make_algorithm("dfs")

    def test_scatter_value_pagerank_divides_by_degree(self):
        pr = PageRank()
        prop = np.array([0.4, 0.6])
        deg = np.array([2, 0])
        sv = pr.scatter_value(prop, deg)
        assert sv[0] == pytest.approx(0.2)
        assert sv[1] == pytest.approx(0.6)  # dangling: degree clamped to 1

    def test_scalar_and_vector_kernels_agree(self):
        rng = np.random.default_rng(0)
        for alg in (BFS(), SSSP(), SSWP(), PageRank()):
            sprop = rng.uniform(0, 10, 50)
            w = rng.integers(1, 20, 50)
            vec = alg.process_edge_vec(sprop, w)
            scal = np.array([alg.process_edge(s, int(x)) for s, x in zip(sprop, w)])
            assert np.allclose(vec, scal)
            a = rng.uniform(0, 10, 50)
            b = rng.uniform(0, 10, 50)
            t = a.copy()
            alg.reduce_at(t, np.arange(50), b)
            scal = np.array([alg.reduce(x, y) for x, y in zip(a, b)])
            assert np.allclose(t, scal)


class TestPropertyBased:
    @given(seed=st.integers(0, 1000), v=st.integers(2, 40), e=st.integers(1, 200))
    @settings(max_examples=25, deadline=None)
    def test_bfs_triangle_inequality(self, seed, v, e):
        g = erdos_renyi(v, e, seed=seed)
        res = run_reference(g, BFS(), source=0)
        lvl = res.properties
        for s, d, _ in g.edges():
            if np.isfinite(lvl[s]):
                assert lvl[d] <= lvl[s] + 1

    @given(seed=st.integers(0, 1000), v=st.integers(2, 40), e=st.integers(1, 200))
    @settings(max_examples=25, deadline=None)
    def test_sssp_relaxation_fixpoint(self, seed, v, e):
        g = erdos_renyi(v, e, seed=seed)
        res = run_reference(g, SSSP(), source=0)
        dist = res.properties
        for s, d, w in g.edges():
            if np.isfinite(dist[s]):
                assert dist[d] <= dist[s] + w

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_pagerank_conserves_at_most_unit_mass(self, seed):
        g = erdos_renyi(25, 120, seed=seed)
        res = run_reference(g, PageRank(iterations=8), source=0)
        assert 0 < res.properties.sum() <= 1.0 + 1e-9
        assert np.all(res.properties > 0)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_sswp_width_never_exceeds_max_weight(self, seed):
        g = erdos_renyi(25, 120, seed=seed)
        res = run_reference(g, SSWP(), source=0)
        finite = res.properties[np.isfinite(res.properties)]
        others = np.delete(finite, 0) if len(finite) else finite
        if g.num_edges and len(others):
            assert others.max() <= g.weights.max()
