"""End-to-end tests of the serve daemon over a real unix socket.

Every test runs a daemon on a background thread (``serve_in_thread``)
with the inline worker pool — same process, so ``monkeypatch`` can
intercept :func:`repro.sweep.executor.execute_job` to count and gate
real simulations deterministically.
"""

import json
import os
import socket
import tempfile
import threading

import pytest

from repro.accel import higraph
from repro.accel.stats import SimStats
from repro.api import LocalSession, RemoteSession, Session, session
from repro.errors import ServeError
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.daemon import serve_in_thread
from repro.sweep import executor
from repro.sweep.jobs import GraphSpec, SweepJob


@pytest.fixture
def sock_dir():
    # unix socket paths are capped around 108 bytes; pytest's tmp_path
    # can exceed that, so sockets live in a short-lived /tmp dir
    with tempfile.TemporaryDirectory(dir="/tmp", prefix="repro-serve-") as d:
        yield d


def _jobs(*algorithms):
    return [SweepJob(graph=GraphSpec("VT", scale=0.03), algorithm=alg,
                     config=higraph(), tags={"algorithm": alg})
            for alg in (algorithms or ("BFS", "SSSP"))]


class TestSweepLifecycle:
    def test_cold_then_warm_resubmission(self, sock_dir):
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock, cache_dir=os.path.join(sock_dir, "c")):
            client = ServeClient(sock)
            cold = client.run_sweep(_jobs())
            assert cold.executed == 2 and cold.cache_hits == 0
            warm = client.run_sweep(_jobs())
            assert warm.executed == 0 and warm.cache_hits == 2
            assert warm.stats == cold.stats      # same dict payloads
            assert all(s == 0.0 for s in warm.job_seconds)

    def test_ping_reports_protocol_and_version(self, sock_dir):
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock) as daemon:
            pong = ServeClient(sock).ping()
            assert pong.protocol == protocol.PROTOCOL_VERSION
            assert pong.code_version == daemon.version
            assert len(pong.code_version) == 64

    def test_progress_stream_replays_and_terminates(self, sock_dir):
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock, cache_dir=os.path.join(sock_dir, "c")):
            client = ServeClient(sock)
            ticket = client.submit_sweep(_jobs())
            events = []
            done = client.stream(ticket, on_progress=lambda e: events.append(e))
            assert [(e.done, e.total) for e in events] == [(1, 2), (2, 2)]
            assert all(e.ticket == ticket for e in events)
            assert done.executed == 2
            # a late subscriber gets the full replay
            replay = []
            client.stream(ticket, on_progress=lambda e: replay.append(e))
            assert [(e.done, e.total) for e in replay] == [(1, 2), (2, 2)]

    def test_status_tracks_daemon_and_ticket(self, sock_dir):
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock, cache_dir=os.path.join(sock_dir, "c")):
            client = ServeClient(sock)
            ticket = client.submit_sweep(_jobs("BFS"))
            client.fetch(ticket)
            st = client.status(ticket)
            assert st.state == "done" and st.done == st.total == 1
            daemon_status = client.status()
            assert daemon_status.state == "serving"
            assert daemon_status.tickets == 1
            assert daemon_status.executed == 1

    def test_unknown_ticket_is_an_error_reply(self, sock_dir):
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock):
            with pytest.raises(ServeError, match="t999"):
                ServeClient(sock).fetch("t999")

    def test_empty_submission_rejected(self, sock_dir):
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock):
            with pytest.raises(ServeError, match="at least one job"):
                ServeClient(sock).submit_sweep([])

    def test_version_mismatch_answered_then_hung_up(self, sock_dir):
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock):
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
                raw.settimeout(10.0)
                raw.connect(sock)
                raw.sendall(json.dumps({"v": 0, "type": "ping"})
                            .encode() + b"\n")
                with raw.makefile("rb") as stream:
                    reply = protocol.decode(stream.readline())
                    assert isinstance(reply, protocol.Error)
                    assert reply.code == "protocol-version"
                    assert stream.readline() == b""   # connection closed


class TestDedup:
    def test_concurrent_identical_submits_one_simulation(
            self, sock_dir, monkeypatch):
        """Two clients racing the same job must share one execution."""
        executions = []
        gate = threading.Event()

        def fake_execute(job):
            executions.append(job.describe())
            assert gate.wait(timeout=30.0)
            return SimStats(algorithm=job.algorithm, graph_name="VT",
                            scatter_cycles=123, edges_processed=456)

        monkeypatch.setattr(executor, "execute_job", fake_execute)
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock, cache_dir=os.path.join(sock_dir, "c")):
            client = ServeClient(sock)
            job = _jobs("BFS")
            first = client.submit_sweep(job)
            second = client.submit_sweep(job)   # identical cache key
            gate.set()
            done_first = client.fetch(first)
            done_second = client.fetch(second)
        assert executions == ["BFS/VT/HiGraph"]          # exactly one run
        assert done_first.executed == 1
        assert done_second.executed == 0
        assert done_second.deduped == 1
        assert done_second.cache_hits == 1               # served, not simulated
        assert done_second.stats == done_first.stats

    def test_duplicate_keys_within_one_submission(self, sock_dir,
                                                  monkeypatch):
        executions = []

        def fake_execute(job):
            executions.append(job.describe())
            return SimStats(algorithm=job.algorithm, scatter_cycles=7)

        monkeypatch.setattr(executor, "execute_job", fake_execute)
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock, cache_dir=os.path.join(sock_dir, "c")):
            done = ServeClient(sock).run_sweep(_jobs("PR") + _jobs("PR"))
        assert len(executions) == 1
        assert done.executed == 1 and done.cache_hits == 1
        assert done.stats[0] == done.stats[1]

    def test_failed_job_fails_every_attached_ticket(self, sock_dir,
                                                    monkeypatch):
        def fake_execute(job):
            raise ValueError("synthetic simulation failure")

        monkeypatch.setattr(executor, "execute_job", fake_execute)
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock, cache_dir=os.path.join(sock_dir, "c")):
            client = ServeClient(sock)
            ticket = client.submit_sweep(_jobs("BFS"))
            with pytest.raises(ServeError, match="synthetic"):
                client.fetch(ticket)
            # the daemon survives and keeps serving
            assert client.ping().protocol == protocol.PROTOCOL_VERSION


class TestCacheAndReload:
    def test_cache_info_and_gc(self, sock_dir):
        sock = os.path.join(sock_dir, "d.sock")
        cache_dir = os.path.join(sock_dir, "c")
        with serve_in_thread(sock, cache_dir=cache_dir):
            client = ServeClient(sock)
            client.run_sweep(_jobs())
            info = client.cache_info()
            assert info.cache_dir == cache_dir
            assert info.entries == 2 and info.total_bytes > 0
            gc = client.cache_gc(max_bytes=0, dry_run=True)
            assert gc.dry_run and gc.removed == 2
            assert client.cache_info().entries == 2   # dry run kept them
            gc = client.cache_gc(max_bytes=0)
            assert gc.removed == 2
            assert client.cache_info().entries == 0

    def test_cacheless_daemon_reports_and_refuses_gc(self, sock_dir):
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock):
            client = ServeClient(sock)
            assert client.cache_info().cache_dir is None
            with pytest.raises(ServeError, match="without a result cache"):
                client.cache_gc(max_bytes=0)

    def test_reload_without_change_keeps_generation(self, sock_dir):
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock) as daemon:
            reloaded = ServeClient(sock).reload()
            assert reloaded.changed is False
            assert reloaded.code_version == daemon.version

    def test_reload_after_change_bumps_generation(self, sock_dir,
                                                  monkeypatch):
        from repro.sweep import cache as cache_mod
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock) as daemon:
            client = ServeClient(sock)
            before = client.ping().generation
            monkeypatch.setattr(cache_mod, "_digest_source_tree",
                                lambda: "f" * 64)
            reloaded = client.reload()
            assert reloaded.changed is True
            assert reloaded.code_version == "f" * 64
            assert reloaded.generation == before + 1
            assert daemon.scheduler.version == "f" * 64
            monkeypatch.undo()
            client.reload()          # restore the real digest for peers


class TestSessionFacade:
    def test_local_and_remote_stats_byte_identical(self, sock_dir):
        jobs = _jobs()
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock, cache_dir=os.path.join(sock_dir, "c")):
            with RemoteSession(sock) as remote:
                remote_outcome = remote.sweep(jobs)
        with LocalSession() as local:
            local_outcome = local.sweep(jobs)
        assert len(remote_outcome.stats) == len(local_outcome.stats) == 2
        for ours, theirs in zip(remote_outcome.stats, local_outcome.stats):
            assert (json.dumps(ours.to_dict(), sort_keys=True)
                    == json.dumps(theirs.to_dict(), sort_keys=True))

    def test_remote_simulate_and_progress(self, sock_dir):
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock, cache_dir=os.path.join(sock_dir, "c")):
            with RemoteSession(sock) as remote:
                stats = remote.simulate(_jobs("BFS")[0])
                assert stats.total_cycles > 0
                seen = []
                remote.sweep(_jobs(), on_progress=lambda d, t, j:
                             seen.append((d, t, j)))
                assert [(d, t) for d, t, _ in seen] == [(1, 2), (2, 2)]
                assert all(isinstance(j, str) for _, _, j in seen)

    def test_session_factory_dispatch(self, sock_dir):
        assert isinstance(session(), LocalSession)
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock):
            remote = session(sock)
            assert isinstance(remote, RemoteSession)
            assert remote.ping().protocol == protocol.PROTOCOL_VERSION
        with pytest.raises(ServeError, match="local sessions only"):
            session(sock, cache_dir="/tmp/x")

    def test_closed_session_refuses_work(self):
        local = LocalSession()
        local.close()
        with pytest.raises(ServeError, match="closed"):
            local.sweep(_jobs("BFS"))
        assert issubclass(LocalSession, Session)
        assert issubclass(RemoteSession, Session)

    def test_client_refuses_dead_socket(self, sock_dir):
        with pytest.raises(ServeError, match="cannot reach daemon"):
            ServeClient(os.path.join(sock_dir, "gone.sock")).ping()


class TestReportEndpoint:
    def test_remote_report_matches_local_bytes(self, sock_dir, tmp_path):
        """The acceptance invariant: a daemon-side regeneration of the
        same results_dir is byte-identical to the local CLI path."""
        results = tmp_path / "results"
        cache_dir = os.path.join(sock_dir, "c")
        sections = ["table1", "fig4"]          # model sections: no sims
        # REPORT.md embeds the cache dir, so both paths must share one
        with LocalSession(cache_dir=cache_dir) as local:
            local_report = local.report(results, sections=sections)
        cold_bytes = (results / "REPORT.md").read_bytes()

        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock, cache_dir=cache_dir):
            with RemoteSession(sock) as remote:
                remote_report = remote.report(results, sections=sections)
        assert (results / "REPORT.md").read_bytes() == cold_bytes
        assert remote_report.report_path == local_report.report_path
        assert [s["section"] for s in remote_report.sections] \
            == [s["section"] for s in local_report.sections]

    def test_client_scale_scopes_daemon_side_matrix(self, sock_dir,
                                                    tmp_path, monkeypatch):
        """A remote report builds its job matrix on the daemon, so the
        client's $REPRO_SCALE must travel with the request — otherwise
        it would miss every cache entry a local run at that scale
        wrote (and silently report different numbers)."""
        cache_dir = os.path.join(sock_dir, "c")
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        with LocalSession(cache_dir=cache_dir) as local:
            cold = local.report(tmp_path / "r", sections=["fig12"])
        assert cold.executed > 0
        monkeypatch.delenv("REPRO_SCALE")   # daemon ambient: no scale

        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock, cache_dir=cache_dir):
            done = ServeClient(sock).regen_report(
                tmp_path / "r", sections=["fig12"], scale="0.02")
        assert sum(s["executed"] for s in done.sections) == 0
        assert os.environ.get("REPRO_SCALE") is None   # scope released

    def test_remote_report_sweeps_use_daemon_cache(self, sock_dir,
                                                   tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock, cache_dir=os.path.join(sock_dir, "c")):
            with RemoteSession(sock) as remote:
                cold = remote.report(tmp_path / "r", sections=["fig12"])
                assert cold.executed > 0
                warm = remote.report(tmp_path / "r", sections=["fig12"])
        assert warm.executed == 0
        assert warm.cache_hits == cold.total_jobs


class TestCliServeVerbs:
    """`repro serve reload|status --connect` against a live daemon."""

    def test_status_verb_prints_the_daemon_line(self, sock_dir, capsys):
        from repro.cli import main
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock):
            assert main(["serve", "status", "--connect", sock]) == 0
        out = capsys.readouterr().out
        assert "state: serving" in out
        assert "workers:" in out and "generation:" in out

    def test_reload_verb_reports_version_and_generation(self, sock_dir,
                                                        capsys):
        from repro.cli import main
        sock = os.path.join(sock_dir, "d.sock")
        with serve_in_thread(sock) as daemon:
            assert main(["serve", "reload", "--connect", sock]) == 0
            out = capsys.readouterr().out
            assert f"code version {daemon.version[:12]}" in out
            assert "unchanged" in out       # nothing edited under test
