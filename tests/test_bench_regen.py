"""Tests for the cache-driven report regeneration pipeline.

The heavyweight property — a warm cache regenerates the FULL report
byte-for-byte with ZERO simulator invocations — is asserted by running
every section twice at a tiny ``REPRO_SCALE`` and forbidding
``execute_job`` on the second pass.
"""

import json
import os

import pytest

import repro.sweep.executor as executor_mod
from repro.bench import (
    REPORT_SECTIONS,
    latency_ablation_rows,
    load_bench_graph,
    slicing_rows,
    table1_config_rows,
)
from repro.bench.regen import (
    FIGURE_SECTIONS,
    SECTIONS,
    RegenContext,
    regenerate,
    resolve_sections,
)
from repro.bench.report import REGEN_HINT, build_report, section_status
from repro.errors import SweepError

#: Scale every Table 2 stand-in down to toy size for pipeline tests.
TINY_SCALE = "0.01"


@pytest.fixture()
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", TINY_SCALE)


def _forbid_simulation(monkeypatch):
    def _refuse(job):
        raise AssertionError(
            f"simulator invoked on a warm cache for job {job.describe()}")
    monkeypatch.setattr(executor_mod, "execute_job", _refuse)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_sections_cover_every_report_section(self):
        assert list(SECTIONS) == [key for key, _ in REPORT_SECTIONS]

    def test_every_section_reachable_by_alias(self):
        reachable = {key for keys in FIGURE_SECTIONS.values() for key in keys}
        assert reachable == set(SECTIONS)

    def test_resolve_defaults_to_all(self):
        assert resolve_sections(None) == [key for key, _ in REPORT_SECTIONS]
        assert resolve_sections([]) == [key for key, _ in REPORT_SECTIONS]

    def test_resolve_mixes_keys_and_aliases_in_report_order(self):
        got = resolve_sections(["fig10", "table1_configs", "fig8"])
        assert got == ["table1_configs", "fig08_speedup",
                       "fig10a_opt_throughput", "fig10b_starvation"]

    def test_resolve_rejects_unknown(self):
        with pytest.raises(SweepError, match="unknown report section"):
            resolve_sections(["fig99"])


# ----------------------------------------------------------------------
# The tentpole property: warm cache => byte-identical report, zero sims
# ----------------------------------------------------------------------

class TestColdWarm:
    def test_full_report_cold_then_warm(self, tmp_path, tiny_scale, monkeypatch):
        results = tmp_path / "results"
        cache = tmp_path / "cache"

        cold = regenerate(str(results), num_workers=1, cache=str(cache))
        assert cold.total_jobs > 0
        assert cold.executed > 0
        # every unique cell simulated exactly once; the only cold-run
        # "hits" are cells shared across sections (e.g. PR/R14 appears
        # in both the Fig. 8/9 matrix and the latency ablation)
        assert cold.executed + cold.cache_hits == cold.total_jobs
        assert cold.cache_hits < cold.total_jobs
        cold_report = (results / "REPORT.md").read_bytes()
        cold_tables = {key: (results / f"{key}.txt").read_bytes()
                       for key, _ in REPORT_SECTIONS}
        # every section made it into the consolidated report
        text = cold_report.decode("utf-8")
        for _key, title in REPORT_SECTIONS:
            assert title in text
        assert "Missing sections" not in text

        # warm pass: same config, but the simulator is now off limits
        (results / "REPORT.md").unlink()
        _forbid_simulation(monkeypatch)
        warm = regenerate(str(results), num_workers=1, cache=str(cache))

        assert warm.executed == 0
        assert warm.cache_hits == warm.total_jobs == cold.total_jobs
        assert (results / "REPORT.md").read_bytes() == cold_report
        for key, _ in REPORT_SECTIONS:
            assert (results / f"{key}.txt").read_bytes() == cold_tables[key], key

    def test_provenance_sidecar_accounts_for_the_run(self, tmp_path, tiny_scale):
        results = tmp_path / "results"
        report = regenerate(str(results), sections=["latency"],
                            cache=str(tmp_path / "cache"))
        payload = json.loads((results / "REPORT.provenance.json").read_text())
        assert payload["code_version"] == report.code_version
        assert payload["totals"]["jobs"] == 4
        assert payload["totals"]["executed"] == 4
        [record] = payload["sections"]
        assert record["section"] == "ablation_latency"
        assert len(record["job_seconds"]) == 4
        assert all(s > 0 for s in record["job_seconds"])

    def test_shared_matrix_charged_once(self, tmp_path, tiny_scale):
        report = regenerate(str(tmp_path / "results"),
                            sections=["fig8", "fig9"],
                            cache=str(tmp_path / "cache"))
        by_key = {r["section"]: r for r in report.sections}
        assert by_key["fig08_speedup"]["jobs"] == 72       # 4 alg x 6 ds x 3 cfg
        assert by_key["fig09_throughput"]["jobs"] == 0     # shared sweep
        assert report.executed == 72


class TestSectionFilter:
    def test_section_filter_writes_only_selected(self, tmp_path, tiny_scale):
        results = tmp_path / "results"
        report = regenerate(str(results), sections=["table1", "fig4"])
        assert {r["section"] for r in report.sections} == \
            {"table1_configs", "fig04_crossbar_frequency"}
        produced = {p.name for p in results.iterdir()}
        assert produced == {"table1_configs.txt", "fig04_crossbar_frequency.txt",
                            "REPORT.md", "REPORT.provenance.json"}
        text = (results / "REPORT.md").read_text()
        # unselected sections are flagged, with the regeneration hint
        assert "Missing sections" in text
        assert REGEN_HINT in text

    def test_pure_sections_need_no_cache_and_no_sim(self, tmp_path, monkeypatch):
        _forbid_simulation(monkeypatch)
        report = regenerate(str(tmp_path / "results"),
                            sections=["table1", "fig4", "fig7", "area"])
        assert report.total_jobs == 0
        assert report.cache_dir is None


# ----------------------------------------------------------------------
# Staleness
# ----------------------------------------------------------------------

class TestStaleness:
    def _warm(self, tmp_path):
        results = tmp_path / "results"
        cache = tmp_path / "cache"
        regenerate(str(results), sections=["latency"], cache=str(cache))
        return results, cache

    def test_fresh_after_regeneration(self, tmp_path, tiny_scale):
        results, cache = self._warm(tmp_path)
        status = section_status(str(results), str(cache))
        assert status["ablation_latency"] == "fresh"
        assert status["fig08_speedup"] == "missing"

    def test_txt_older_than_cache_is_stale_and_flagged(self, tmp_path, tiny_scale):
        results, cache = self._warm(tmp_path)
        old = (results / "ablation_latency.txt")
        os.utime(old, (1, 1))                      # 1970: older than any entry
        status = section_status(str(results), str(cache))
        assert status["ablation_latency"] == "stale"
        text = build_report(str(results), cache_dir=str(cache))
        assert "*Stale:" in text
        assert REGEN_HINT in text

    def test_no_cache_dir_never_stale(self, tmp_path, tiny_scale):
        results, _cache = self._warm(tmp_path)
        os.utime(results / "ablation_latency.txt", (1, 1))
        status = section_status(str(results), None)
        assert status["ablation_latency"] == "fresh"


# ----------------------------------------------------------------------
# Row builders match the direct (non-sweep) simulations
# ----------------------------------------------------------------------

class TestRowBuilders:
    def test_latency_rows_match_direct_simulation(self, tiny_scale):
        from repro.accel import graphdyns, higraph, simulate
        from repro.algorithms import BFS, PageRank
        from repro.graph import chain

        rows = latency_ablation_rows()
        expected = []
        latency_graph = chain(256)
        r14 = load_bench_graph("R14")
        for maker, label in ((higraph, "HiGraph"), (graphdyns, "GraphDynS")):
            stats = simulate(maker(), latency_graph, BFS()).stats
            expected.append(("chain-BFS (latency-bound)", label,
                             stats.total_cycles))
        for maker, label in ((higraph, "HiGraph"), (graphdyns, "GraphDynS")):
            stats = simulate(maker(), r14, PageRank(iterations=2)).stats
            expected.append(("R14-PR (throughput-bound)", label,
                             stats.total_cycles))
        got = [(r["workload"], r["design"], r["cycles"]) for r in rows]
        assert got == expected

    def test_slicing_rows_match_direct_sliced_simulation(self, tiny_scale):
        from repro.accel import SlicedAcceleratorSim, higraph, slice_load_cycles
        from repro.algorithms import PageRank
        from repro.graph import partition_by_destination

        rows = slicing_rows()
        g = load_bench_graph("R14")
        slices = partition_by_destination(g, 4)
        sim = SlicedAcceleratorSim(higraph(), g, PageRank(iterations=2),
                                   slices=slices, offchip_bytes_per_cycle=64.0)
        stats = sim.run().stats
        total_load = sum(slice_load_cycles(s.num_edges, 64.0)
                         for s in slices) * stats.iterations
        row = rows[0]
        assert row["slices"] == stats.slices == 4
        assert row["double_buffer_total"] == stats.total_cycles
        assert row["exposed_load_cycles"] == stats.slice_load_cycles
        assert row["raw_load_cycles"] == total_load
        assert row["gteps_double_buffered"] == stats.gteps

    def test_table1_rows_shape(self):
        rows = table1_config_rows()
        assert [r["design"] for r in rows] == \
            ["GraphDynS", "HiGraph-mini", "HiGraph"]
        assert all(abs(r["frequency_ghz"] - 1.0) < 1e-9 for r in rows)
