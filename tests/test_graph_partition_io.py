"""Tests for graph slicing (paper §5.3 Discussion) and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CapacityError
from repro.graph import (
    CSRGraph,
    erdos_renyi,
    load_edge_list,
    load_npz,
    partition_by_destination,
    partition_for_budget,
    rmat,
    save_edge_list,
    save_npz,
    slice_count_for_budget,
    validate_partition,
)


class TestPartition:
    def test_single_slice_when_fits(self):
        g = rmat(6, 4.0, seed=2)
        budget = g.memory_footprint().total_bytes + 1024
        slices = partition_for_budget(g, budget)
        assert len(slices) == 1
        validate_partition(g, slices)

    def test_slices_tile_edges(self):
        g = rmat(8, 8.0, seed=4)
        slices = partition_by_destination(g, 4)
        validate_partition(g, slices)
        assert sum(s.num_edges for s in slices) == g.num_edges

    def test_each_slice_respects_interval(self):
        g = erdos_renyi(64, 512, seed=3)
        for s in partition_by_destination(g, 4):
            if s.graph.num_edges:
                assert s.graph.dst.min() >= s.dst_lo
                assert s.graph.dst.max() < s.dst_hi

    def test_budget_partition_fits(self):
        g = rmat(9, 8.0, seed=5)
        full = g.memory_footprint()
        budget = (full.offset_bytes + full.property_bytes
                  + full.active_and_tproperty_bytes
                  + (full.edge_bytes + full.edge_info_bytes) // 3)
        slices = partition_for_budget(g, budget)
        assert len(slices) >= 3
        validate_partition(g, slices)

    def test_impossible_budget_rejected(self):
        g = rmat(8, 4.0, seed=6)
        with pytest.raises(CapacityError):
            slice_count_for_budget(g, 16)  # 16 bytes: vertex arrays can't fit

    def test_zero_slices_rejected(self):
        with pytest.raises(CapacityError):
            partition_by_destination(rmat(4, 2.0), 0)

    def test_validate_partition_detects_gap(self):
        g = erdos_renyi(32, 64, seed=1)
        slices = partition_by_destination(g, 2)
        bad = [slices[0]]
        with pytest.raises(CapacityError):
            validate_partition(g, bad)

    @given(num_slices=st.integers(min_value=1, max_value=16))
    @settings(max_examples=16, deadline=None)
    def test_any_slice_count_tiles(self, num_slices):
        g = erdos_renyi(50, 300, seed=8)
        validate_partition(g, partition_by_destination(g, num_slices))


class TestIO:
    def test_edge_list_round_trip(self, tmp_path):
        g = erdos_renyi(20, 60, seed=7, name="io-test")
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        g2 = load_edge_list(path, num_vertices=20)
        assert g == g2

    def test_edge_list_without_weights_defaults_to_one(self, tmp_path):
        path = tmp_path / "simple.txt"
        path.write_text("# comment\n0 1\n1 2\n")
        g = load_edge_list(path)
        assert list(g.weights) == [1, 1]
        assert g.num_vertices == 3

    def test_edge_list_bad_line_rejected(self, tmp_path):
        from repro.errors import GraphFormatError
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_edge_list_non_integer_rejected(self, tmp_path):
        from repro.errors import GraphFormatError
        path = tmp_path / "bad2.txt"
        path.write_text("0 x\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_npz_round_trip(self, tmp_path):
        g = rmat(7, 4.0, seed=9, name="npz-test")
        path = tmp_path / "g.npz"
        save_npz(g, path)
        g2 = load_npz(path)
        assert g == g2
        assert g2.name == "npz-test"

    def test_empty_edge_list(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        g = load_edge_list(path)
        assert g.num_vertices == 0
        assert g.num_edges == 0
