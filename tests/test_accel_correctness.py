"""Integration tests: every simulated design must compute exactly what the
functional golden model computes, for every algorithm, on assorted graphs.

This is the core guarantee of the reproduction — the cycle-level pipeline
(queues, arbiters, networks, replay engines, dispatchers, coalescing)
reorders work aggressively but may never lose, duplicate, or corrupt an
edge update.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import ablation, graphdyns, higraph, higraph_mini, simulate
from repro.algorithms import BFS, SSSP, SSWP, PageRank, run_reference
from repro.errors import SimulationError
from repro.graph import (
    CSRGraph,
    chain,
    complete,
    erdos_renyi,
    grid_2d,
    inverse_star,
    rmat,
    star,
)

CONFIGS = {
    "HiGraph": higraph(),
    "HiGraph-mini": higraph_mini(),
    "GraphDynS": graphdyns(),
}

GRAPHS = {
    "chain": chain(12),
    "star": star(9),
    "inverse-star": inverse_star(9),
    "grid": grid_2d(5, 5),
    "er": erdos_renyi(80, 400, seed=11),
    "rmat": rmat(7, 8.0, seed=12),
    "complete": complete(9),
}

ALGORITHMS = {
    "BFS": BFS,
    "SSSP": SSSP,
    "SSWP": SSWP,
    "PR": lambda: PageRank(iterations=4),
}


def assert_matches_reference(config, graph, algorithm, source=0):
    ref = run_reference(graph, algorithm, source=source)
    res = simulate(config, graph, algorithm, source=source)
    if algorithm.name == "PR":
        assert np.allclose(res.properties, ref.properties, rtol=1e-9, atol=1e-15)
    else:
        assert np.array_equal(res.properties, ref.properties)
    assert res.stats.edges_processed == ref.total_edges
    assert res.stats.iterations == ref.num_iterations
    return res


@pytest.mark.parametrize("gname", list(GRAPHS))
@pytest.mark.parametrize("aname", list(ALGORITHMS))
@pytest.mark.parametrize("cname", list(CONFIGS))
class TestAllDesignsMatchReference:
    def test_matches_golden_model(self, cname, aname, gname):
        assert_matches_reference(CONFIGS[cname], GRAPHS[gname],
                                 ALGORITHMS[aname]())


class TestAblationCorrectness:
    """Every Fig. 10 ablation point computes identical results too."""

    @pytest.mark.parametrize("opts", [(False, False, False), (True, False, False),
                                      (True, True, False), (True, True, True),
                                      (False, False, True), (False, True, False)])
    def test_ablation_configs_match_reference(self, opts):
        o, e, d = opts
        cfg = ablation(opt_o=o, opt_e=e, opt_d=d)
        assert_matches_reference(cfg, GRAPHS["rmat"], BFS())

    def test_combining_disabled_matches_reference(self):
        cfg = higraph(vertex_combining=False)
        assert_matches_reference(cfg, GRAPHS["rmat"], PageRank(iterations=3))
        assert_matches_reference(cfg, GRAPHS["inverse-star"], SSSP())


class TestEdgeCases:
    def test_empty_graph(self):
        g = CSRGraph.from_edges(0, [])
        res = simulate(higraph(), g, BFS())
        assert res.properties.size == 0
        assert res.stats.total_cycles == 0

    def test_single_vertex_no_edges(self):
        g = CSRGraph.from_edges(1, [])
        res = simulate(higraph(), g, BFS(), source=0)
        assert res.properties[0] == 0.0

    def test_isolated_source(self):
        g = CSRGraph.from_edges(5, [(1, 2)])
        res = simulate(higraph(), g, BFS(), source=0)
        assert res.properties[0] == 0.0
        assert np.isinf(res.properties[1])

    def test_self_loop(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (1, 2)])
        assert_matches_reference(higraph(), g, SSSP())

    def test_parallel_edges(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 1), (0, 1), (1, 2)],
                                [5, 2, 9, 1])
        assert_matches_reference(higraph(), g, SSSP())
        assert_matches_reference(graphdyns(), g, SSWP())

    def test_source_out_of_range(self):
        with pytest.raises(SimulationError):
            simulate(higraph(), chain(3), BFS(), source=9)

    def test_different_sources(self):
        g = GRAPHS["er"]
        for src in (0, 7, 33):
            assert_matches_reference(higraph(), g, BFS(), source=src)

    def test_max_iterations_truncates(self):
        res = simulate(higraph(), chain(10), BFS(), max_iterations=2)
        assert res.stats.iterations == 2

    def test_hotspot_graph_all_updates_reach_one_vertex(self):
        """inverse-star + PageRank: every source is active and every
        edge reduces into vertex 0 — the worst case for dataflow
        propagation; combining must keep the sum exact."""
        g = inverse_star(64)
        for cfg in CONFIGS.values():
            res = assert_matches_reference(cfg, g, PageRank(iterations=2))
            assert res.stats.edges_processed == 128


class TestDeterminism:
    def test_same_run_twice_identical(self):
        g = GRAPHS["rmat"]
        a = simulate(higraph(), g, PageRank(iterations=3))
        b = simulate(higraph(), g, PageRank(iterations=3))
        assert np.array_equal(a.properties, b.properties)
        assert a.stats.total_cycles == b.stats.total_cycles
        assert a.stats.vpe_starvation_cycles == b.stats.vpe_starvation_cycles


class TestPropertyBased:
    @given(seed=st.integers(0, 500), v=st.integers(2, 50), e=st.integers(1, 250))
    @settings(max_examples=12, deadline=None)
    def test_random_graphs_bfs_higraph(self, seed, v, e):
        g = erdos_renyi(v, e, seed=seed)
        assert_matches_reference(higraph(), g, BFS())

    @given(seed=st.integers(0, 500), v=st.integers(2, 50), e=st.integers(1, 250))
    @settings(max_examples=8, deadline=None)
    def test_random_graphs_sssp_graphdyns(self, seed, v, e):
        g = erdos_renyi(v, e, seed=seed)
        assert_matches_reference(graphdyns(), g, SSSP())

    @given(seed=st.integers(0, 500))
    @settings(max_examples=8, deadline=None)
    def test_random_graphs_pr_mini(self, seed):
        g = erdos_renyi(40, 200, seed=seed)
        assert_matches_reference(higraph_mini(), g, PageRank(iterations=3))
