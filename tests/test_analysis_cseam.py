"""Mutation tests for the C↔Python seam verifier.

Each test copies the *real* kernel seam (``_soa_march.c`` plus its
Python mirrors) into a fixture repo, applies exactly one plausible
drift — a swapped struct field, a renumbered counter slot, a dropped
dtype — and asserts the responsible rule reports **exactly one**
finding naming both the C and the Python location.  A clean copy must
stay silent, so the suite also proves the rules carry zero false
positives on the shipped seam.
"""

from pathlib import Path

import pytest

from repro.analysis import run_rules

REPO = Path(__file__).resolve().parent.parent

SEAM_FILES = (
    "src/repro/accel/engine/_soa_march.c",
    "src/repro/accel/engine/soa.py",
    "src/repro/accel/engine/soakernel.py",
    "src/repro/accel/engine/batched.py",
    "src/repro/algorithms/base.py",
)


def copy_seam(root: Path) -> None:
    for relpath in SEAM_FILES:
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text((REPO / relpath).read_text(encoding="utf-8"),
                          encoding="utf-8")


def mutate(root: Path, relpath: str, old: str, new: str) -> None:
    path = root / relpath
    source = path.read_text(encoding="utf-8")
    assert source.count(old) == 1, f"ambiguous mutation anchor: {old!r}"
    path.write_text(source.replace(old, new), encoding="utf-8")


def run(root: Path, rule_id: str):
    findings, ran = run_rules(root, [rule_id])
    assert ran == [rule_id]
    return findings


C = "src/repro/accel/engine/_soa_march.c"
SOA = "src/repro/accel/engine/soa.py"


class TestCleanSeam:
    @pytest.mark.parametrize("rule_id", ["c-seam-layout", "c-seam-counters",
                                         "c-seam-kernels"])
    def test_shipped_seam_is_silent(self, tmp_path, rule_id):
        copy_seam(tmp_path)
        assert run(tmp_path, rule_id) == []

    @pytest.mark.parametrize("rule_id", ["c-seam-layout", "c-seam-counters",
                                         "c-seam-kernels"])
    def test_projects_without_the_seam_are_silent(self, tmp_path, rule_id):
        (tmp_path / "src/repro").mkdir(parents=True)
        (tmp_path / "src/repro/other.py").write_text("X = 1\n")
        assert run(tmp_path, rule_id) == []


class TestLayoutMutations:
    def test_swapped_struct_fields_yield_exactly_one_finding(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, SOA,
               '("fifo_depth", _i64), ("block_len", _i64),',
               '("block_len", _i64), ("fifo_depth", _i64),')
        findings = run(tmp_path, "c-seam-layout")
        assert len(findings) == 1
        f = findings[0]
        assert f.symbol == "field-order:fifo_depth"
        assert "_soa_march.c:" in f.message and "soa.py:" in f.message

    def test_swapped_c_fields_yield_exactly_one_finding(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, C,
               "    i64 parity, fstart;",
               "    i64 fstart, parity;")
        findings = run(tmp_path, "c-seam-layout")
        assert len(findings) == 1
        assert findings[0].symbol == "field-order:fstart"

    def test_kind_drift_yields_exactly_one_finding(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, SOA, '("proc_const", _f64),',
               '("proc_const", _i64),')
        findings = run(tmp_path, "c-seam-layout")
        assert len(findings) == 1
        f = findings[0]
        assert f.symbol == "field-kind:proc_const"
        assert "f64" in f.message and "i64" in f.message

    def test_dropped_mirror_field_yields_exactly_one_finding(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, SOA, '("has_rnet", _i64),\n', "")
        findings = run(tmp_path, "c-seam-layout")
        assert len(findings) == 1
        assert findings[0].symbol == "field-order:has_rnet"

    def test_marshalled_dtype_drift_yields_exactly_one_finding(
            self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, SOA,
               "st.iq_s = ptr(arr(n * config.issue_queue_depth, "
               "np.float64))",
               "st.iq_s = ptr(arr(n * config.issue_queue_depth))")
        findings = run(tmp_path, "c-seam-layout")
        assert len(findings) == 1
        f = findings[0]
        assert f.symbol == "dtype:iq_s"
        assert "_soa_march.c:" in f.message and "soa.py:" in f.message

    def test_magic_drift_yields_exactly_one_finding(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, SOA, "_MAGIC = 0x534F4132",
               "_MAGIC = 0x534F4133")
        findings = run(tmp_path, "c-seam-layout")
        assert len(findings) == 1
        assert findings[0].symbol == "magic:value"

    def test_swapped_record_buffer_mirror_fields_are_reported(self,
                                                              tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, SOA,
               '("rec_merge_a", _P), ("rec_merge_b", _P),',
               '("rec_merge_b", _P), ("rec_merge_a", _P),')
        findings = run(tmp_path, "c-seam-layout")
        assert len(findings) == 1
        assert findings[0].symbol == "field-order:rec_merge_a"

    def test_dropped_c_recording_field_is_reported(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, C, "    i64 *rec_deliver;", "    i64 rsvd;")
        findings = run(tmp_path, "c-seam-layout")
        assert len(findings) == 1
        assert findings[0].symbol == "field-order:rsvd"

    def test_record_buffer_dtype_drift_is_reported(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, SOA,
               "self._rec_pull_cyc = arr(v_cap)",
               "self._rec_pull_cyc = arr(v_cap, np.float64)")
        findings = run(tmp_path, "c-seam-layout")
        assert len(findings) == 1
        assert findings[0].symbol == "dtype:rec_pull_cyc"

    def test_missing_c_file_is_one_sided_seam(self, tmp_path):
        copy_seam(tmp_path)
        (tmp_path / C).unlink()
        findings = run(tmp_path, "c-seam-layout")
        assert len(findings) == 1
        assert findings[0].symbol == "seam-missing"
        # the companion rules defer to the layout rule's finding
        assert run(tmp_path, "c-seam-counters") == []
        assert run(tmp_path, "c-seam-kernels") == []


class TestCounterMutations:
    def test_renumbered_slot_yields_exactly_one_finding(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, SOA, "_C_RNET_STALL = 4", "_C_RNET_STALL = 9")
        findings = run(tmp_path, "c-seam-counters")
        assert len(findings) == 1
        f = findings[0]
        assert f.symbol == "slot:C_RNET_STALL"
        assert "_soa_march.c:" in f.message and "soa.py:" in f.message

    def test_renumbered_c_define_yields_exactly_one_finding(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, C, "#define C_PROP_REJ 7", "#define C_PROP_REJ 6")
        findings = run(tmp_path, "c-seam-counters")
        assert len(findings) == 1
        assert findings[0].symbol == "slot:C_PROP_REJ"

    def test_new_counter_site_without_slot_names_both_sides(self, tmp_path):
        copy_seam(tmp_path)
        # a subnetwork grows a SimStats site the C kernel never counts
        engine_dir = tmp_path / "src/repro/accel/engine"
        (engine_dir / "newstage.py").write_text(
            "class _Widget:\n"
            "    kind = 'xbar'\n"
            "    def counter_sites(self):\n"
            "        return [(self, 'overflow_drops')]\n",
            encoding="utf-8")
        findings = run(tmp_path, "c-seam-counters")
        assert len(findings) == 1
        f = findings[0]
        assert f.symbol == "site:overflow_drops"
        assert f.path.endswith("newstage.py")
        assert "_SLOT_SITES" in f.message and "soa.py" in f.message

    def test_undeclared_commit_site_is_reported(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, SOA,
               '"_C_DEFERRALS": ("deferrals",),',
               '"_C_DEFERRALS": (),')
        findings = run(tmp_path, "c-seam-counters")
        assert {f.symbol for f in findings} == {"commit:_C_DEFERRALS.deferrals"}

    def test_slot_without_sites_entry_is_reported(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, SOA, '    "_C_RNET_REJ": ("rejected_offers",),\n',
               "")
        findings = run(tmp_path, "c-seam-counters")
        symbols = {f.symbol for f in findings}
        assert "sites:_C_RNET_REJ" in symbols


class TestKernelMutations:
    def test_renumbered_red_define_yields_exactly_one_finding(self,
                                                              tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, C, "#define RED_MIN 1", "#define RED_MIN 7")
        findings = run(tmp_path, "c-seam-kernels")
        assert len(findings) == 1
        f = findings[0]
        assert f.symbol == "red:min"
        assert "_soa_march.c:" in f.message and "soa.py:" in f.message

    def test_scalar_reduce_without_c_code_is_reported(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, "src/repro/algorithms/base.py",
               '"add": operator.add', '"add": operator.add, "mul": '
               'operator.mul')
        findings = run(tmp_path, "c-seam-kernels")
        assert [f.symbol for f in findings] == ["reduce-op:mul"]
        assert findings[0].path == "src/repro/algorithms/base.py"

    def test_proc_remap_must_name_a_declared_code(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, SOA, "st.proc = 5", "st.proc = 6")
        findings = run(tmp_path, "c-seam-kernels")
        assert [f.symbol for f in findings] == ["proc:6"]

    def test_renumbered_proc_define_is_reported(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, C, "#define PROC_ADD_W 2", "#define PROC_ADD_W 7")
        findings = run(tmp_path, "c-seam-kernels")
        assert [f.symbol for f in findings] == ["proc:PROC_ADD_W"]

    def test_missing_abi_define_is_reported(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, C, "#define SOA_ABI_VERSION 2\n", "")
        findings = run(tmp_path, "c-seam-kernels")
        assert [f.symbol for f in findings] == ["abi:define"]
        assert findings[0].path.endswith("_soa_march.c")

    def test_abi_bump_without_magic_bump_is_reported(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, C, "#define SOA_ABI_VERSION 2",
               "#define SOA_ABI_VERSION 3")
        findings = run(tmp_path, "c-seam-kernels")
        assert [f.symbol for f in findings] == ["abi:magic-sync"]
        assert "SOA_MAGIC" in findings[0].message

    def test_abi_probe_losing_the_name_is_reported(self, tmp_path):
        copy_seam(tmp_path)
        mutate(tmp_path, "src/repro/accel/engine/soakernel.py",
               "SOA_ABI_VERSION", "SOA_ABI_REV")
        findings = run(tmp_path, "c-seam-kernels")
        assert [f.symbol for f in findings] == ["abi:probe"]
