"""Seeded differential fuzzer over every registered scatter engine.

Each case derives everything — graph topology, algorithm, accelerator
configuration, source vertex, sliced vs. unsliced execution — from one
integer seed through a deterministic ``numpy.random.default_rng``
stream, runs the workload on *every* engine in
:data:`repro.accel.engine.ENGINES`, and requires byte-identical
``SimStats.to_dict()`` plus bit-identical result properties against the
``reference`` engine.

Scaling and replay:

* ``REPRO_FUZZ_CASES=<n>`` runs ``n`` cases (default
  :data:`DEFAULT_CASES`, sized for the tier-1 budget; CI's fuzz smoke
  stage and nightly runs raise it).
* ``REPRO_FUZZ_SEED=<s>`` replays a single failing case: the failure
  message of every case embeds the exact one-line command.

The case generator lives in :func:`build_case` so a failure can also be
reproduced interactively (``build_case(seed)`` returns the graph,
config, algorithm name and mode that seed denotes).
"""

import os

import numpy as np
import pytest

from repro.accel import (
    SlicedAcceleratorSim,
    ablation,
    graphdyns,
    higraph,
    higraph_mini,
    simulate,
)
from repro.accel.engine import ENGINES, FFWD_TELEMETRY
from repro.algorithms import make_algorithm
from repro.graph.generators import erdos_renyi, grid_2d, rmat, star
from repro.graph.partition import partition_by_destination
from test_engine_differential import _make_algorithm, divergence_message

#: Cases run when ``REPRO_FUZZ_CASES`` is unset — small enough for the
#: tier-1 suite, large enough to cross every generator branch.
DEFAULT_CASES = 8

#: Base seed; case ``i`` uses seed ``FUZZ_SEED_BASE + i`` so a failure
#: names one integer that regenerates the whole case.
FUZZ_SEED_BASE = 20220714

_ALGORITHMS = ("BFS", "SSSP", "SSWP", "PR", "CC")

#: (channels, radix) pairs valid for every site choice: MDP sites
#: require the channel count to be a power of the radix.
_GEOMETRIES = ((8, 2), (16, 2), (16, 4), (32, 2), (4, 2))


def _fuzz_case_count() -> int:
    raw = os.environ.get("REPRO_FUZZ_CASES", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_CASES


def _fuzz_seeds():
    forced = os.environ.get("REPRO_FUZZ_SEED", "")
    if forced.strip():
        return [int(forced)]
    return [FUZZ_SEED_BASE + i for i in range(_fuzz_case_count())]


def _random_graph(rng):
    family = rng.integers(0, 4)
    if family == 0:
        scale = int(rng.integers(6, 9))
        ratio = float(rng.uniform(3.0, 8.0))
        return rmat(scale, ratio, seed=int(rng.integers(1, 1 << 30)),
                    name=f"fuzz-rmat{scale}")
    if family == 1:
        n = int(rng.integers(60, 400))
        m = int(rng.integers(2 * n, 8 * n))
        return erdos_renyi(n, m, seed=int(rng.integers(1, 1 << 30)),
                           name=f"fuzz-er{n}")
    if family == 2:
        return star(int(rng.integers(20, 250)))
    side = int(rng.integers(4, 14))
    return grid_2d(side, side + int(rng.integers(0, 3)))


def _random_config(rng):
    channels, radix = _GEOMETRIES[int(rng.integers(0, len(_GEOMETRIES)))]
    overrides = dict(
        front_channels=channels,
        back_channels=channels,
        radix=radix,
        fifo_depth=int(rng.integers(radix, radix + 14)),
        epe_queue_depth=int(rng.integers(1, 5)),
        fe_out_depth=int(rng.integers(1, 5)),
        vertex_combining=bool(rng.integers(0, 2)),
    )
    groups = [g for g in (1, 2, 4, 8) if channels % g == 0]
    overrides["dispatcher_group"] = int(groups[int(rng.integers(0, len(groups)))])
    makers = (higraph, higraph_mini, graphdyns,
              lambda **kw: ablation(opt_o=True, opt_d=True, **kw))
    maker = makers[int(rng.integers(0, len(makers)))]
    return maker(**overrides)


def build_case(seed):
    """Everything one fuzz seed denotes, as a dict (deterministic)."""
    rng = np.random.default_rng(seed)
    graph = _random_graph(rng)
    config = _random_config(rng)
    algorithm = _ALGORITHMS[int(rng.integers(0, len(_ALGORITHMS)))]
    source = int(rng.integers(0, graph.num_vertices))
    sliced = bool(rng.integers(0, 4) == 0)  # 1-in-4 cases run sliced
    num_slices = int(rng.integers(2, 5)) if sliced else 0
    return dict(seed=seed, graph=graph, config=config,
                algorithm=algorithm, source=source, sliced=sliced,
                num_slices=num_slices)


def _run_case(case, engine):
    if case["sliced"]:
        slices = partition_by_destination(case["graph"], case["num_slices"])
        sim = SlicedAcceleratorSim(case["config"], case["graph"],
                                   _make_algorithm(case["algorithm"]),
                                   slices=slices, engine=engine)
        return sim.run(source=case["source"])
    return simulate(case["config"], case["graph"],
                    _make_algorithm(case["algorithm"]),
                    source=case["source"], engine=engine)


def _replay_command(seed):
    return (f"REPRO_FUZZ_SEED={seed} PYTHONPATH=src python -m pytest "
            f"tests/test_engine_fuzz.py -k fuzz_case -x")


@pytest.mark.parametrize("seed", _fuzz_seeds())
def test_fuzz_case(seed):
    case = build_case(seed)
    mode = (f"sliced[{case['num_slices']}]" if case["sliced"]
            else "unsliced")
    ref = _run_case(case, "reference")
    for engine in ENGINES:
        if engine == "reference":
            continue
        res = _run_case(case, engine)
        if res.stats.to_dict() != ref.stats.to_dict():
            pytest.fail(
                f"fuzz seed {seed} ({mode}): "
                + divergence_message(
                    engine, case["algorithm"], case["graph"],
                    case["config"], case["source"],
                    ref.stats.to_dict(), res.stats.to_dict(),
                    repro=_replay_command(seed)))
        assert np.array_equal(ref.properties, res.properties), (
            f"fuzz seed {seed} ({mode}): properties diverge "
            f"reference vs {engine}; reproduce: {_replay_command(seed)}")


def _pr_iterations() -> int:
    """Iterations for the multi-iteration PageRank record→replay cases
    (``REPRO_FUZZ_PR_ITERS`` raises it for nightly runs)."""
    raw = os.environ.get("REPRO_FUZZ_PR_ITERS", "")
    try:
        return max(2, int(raw))
    except ValueError:
        return 10


def _pr_seeds():
    forced = os.environ.get("REPRO_FUZZ_SEED", "")
    if forced.strip():
        return [int(forced)]
    count = max(2, _fuzz_case_count() // 4)
    return [FUZZ_SEED_BASE + 1000 + i for i in range(count)]


@pytest.mark.parametrize("seed", _pr_seeds())
def test_fuzz_pr_multi_iteration(seed):
    """Multi-iteration PageRank: phase 1+ records (in C for the soa
    engine), later phases replay — the record→replay mix the 2-iteration
    default cases barely touch."""
    rng = np.random.default_rng(seed)
    graph = _random_graph(rng)
    config = _random_config(rng)
    iters = _pr_iterations()
    ref = simulate(config, graph, make_algorithm("PR", iterations=iters),
                   engine="reference")
    for engine in ENGINES:
        if engine == "reference":
            continue
        res = simulate(config, graph,
                       make_algorithm("PR", iterations=iters),
                       engine=engine)
        if res.stats.to_dict() != ref.stats.to_dict():
            pytest.fail(
                f"fuzz seed {seed} (PRx{iters}): "
                + divergence_message(
                    engine, "PR", graph, config, 0,
                    ref.stats.to_dict(), res.stats.to_dict(),
                    repro=_replay_command(seed)))
        assert np.array_equal(ref.properties, res.properties), (
            f"fuzz seed {seed} (PRx{iters}): properties diverge "
            f"reference vs {engine}")


def test_fuzz_kernel_recording_on_off_differential(monkeypatch):
    """``REPRO_SOA_RECORD=off`` (Python-recorded programs replayed by
    the C march) must not change a single byte vs in-kernel recording."""
    rng = np.random.default_rng(FUZZ_SEED_BASE + 2000)
    graph = _random_graph(rng)
    config = _random_config(rng)
    iters = _pr_iterations()

    monkeypatch.delenv("REPRO_SOA_RECORD", raising=False)
    on = simulate(config, graph, make_algorithm("PR", iterations=iters),
                  engine="soa")
    recorded_on = FFWD_TELEMETRY["c_recorded_phases"]

    monkeypatch.setenv("REPRO_SOA_RECORD", "off")
    off = simulate(config, graph, make_algorithm("PR", iterations=iters),
                   engine="soa")
    recorded_off = FFWD_TELEMETRY["c_recorded_phases"]

    assert recorded_off == 0        # the kill-switch actually killed it
    assert on.stats.to_dict() == off.stats.to_dict()
    assert np.array_equal(on.properties, off.properties)
    # when the compiled kernel is available, recording must run in C
    from repro.accel.engine.soakernel import load_kernel
    if load_kernel() is not None:
        assert recorded_on > 0


def test_case_builder_is_deterministic():
    """The same seed must denote the same case in every process —
    otherwise the replay command in a failure message is useless."""
    a, b = build_case(FUZZ_SEED_BASE), build_case(FUZZ_SEED_BASE)
    assert a["algorithm"] == b["algorithm"]
    assert a["source"] == b["source"]
    assert a["sliced"] == b["sliced"]
    assert a["config"].to_dict() == b["config"].to_dict()
    assert a["graph"].num_vertices == b["graph"].num_vertices
    assert a["graph"].num_edges == b["graph"].num_edges
    assert np.array_equal(a["graph"].dst, b["graph"].dst)


def test_seed_env_replays_single_case(monkeypatch):
    monkeypatch.setenv("REPRO_FUZZ_SEED", "12345")
    assert _fuzz_seeds() == [12345]
    monkeypatch.delenv("REPRO_FUZZ_SEED")
    monkeypatch.setenv("REPRO_FUZZ_CASES", "3")
    assert len(_fuzz_seeds()) == 3
