"""Seeded differential fuzzer over every registered scatter engine.

Each case derives everything — graph topology, algorithm, accelerator
configuration, source vertex, sliced vs. unsliced execution — from one
integer seed through a deterministic ``numpy.random.default_rng``
stream, runs the workload on *every* engine in
:data:`repro.accel.engine.ENGINES`, and requires byte-identical
``SimStats.to_dict()`` plus bit-identical result properties against the
``reference`` engine.

Scaling and replay:

* ``REPRO_FUZZ_CASES=<n>`` runs ``n`` cases (default
  :data:`DEFAULT_CASES`, sized for the tier-1 budget; CI's fuzz smoke
  stage and nightly runs raise it).
* ``REPRO_FUZZ_SEED=<s>`` replays a single failing case: the failure
  message of every case embeds the exact one-line command.

The case generator lives in :func:`build_case` so a failure can also be
reproduced interactively (``build_case(seed)`` returns the graph,
config, algorithm name and mode that seed denotes).
"""

import os

import numpy as np
import pytest

from repro.accel import (
    SlicedAcceleratorSim,
    ablation,
    graphdyns,
    higraph,
    higraph_mini,
    simulate,
)
from repro.accel.engine import ENGINES
from repro.graph.generators import erdos_renyi, grid_2d, rmat, star
from repro.graph.partition import partition_by_destination
from test_engine_differential import _make_algorithm, divergence_message

#: Cases run when ``REPRO_FUZZ_CASES`` is unset — small enough for the
#: tier-1 suite, large enough to cross every generator branch.
DEFAULT_CASES = 8

#: Base seed; case ``i`` uses seed ``FUZZ_SEED_BASE + i`` so a failure
#: names one integer that regenerates the whole case.
FUZZ_SEED_BASE = 20220714

_ALGORITHMS = ("BFS", "SSSP", "SSWP", "PR", "CC")

#: (channels, radix) pairs valid for every site choice: MDP sites
#: require the channel count to be a power of the radix.
_GEOMETRIES = ((8, 2), (16, 2), (16, 4), (32, 2), (4, 2))


def _fuzz_case_count() -> int:
    raw = os.environ.get("REPRO_FUZZ_CASES", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_CASES


def _fuzz_seeds():
    forced = os.environ.get("REPRO_FUZZ_SEED", "")
    if forced.strip():
        return [int(forced)]
    return [FUZZ_SEED_BASE + i for i in range(_fuzz_case_count())]


def _random_graph(rng):
    family = rng.integers(0, 4)
    if family == 0:
        scale = int(rng.integers(6, 9))
        ratio = float(rng.uniform(3.0, 8.0))
        return rmat(scale, ratio, seed=int(rng.integers(1, 1 << 30)),
                    name=f"fuzz-rmat{scale}")
    if family == 1:
        n = int(rng.integers(60, 400))
        m = int(rng.integers(2 * n, 8 * n))
        return erdos_renyi(n, m, seed=int(rng.integers(1, 1 << 30)),
                           name=f"fuzz-er{n}")
    if family == 2:
        return star(int(rng.integers(20, 250)))
    side = int(rng.integers(4, 14))
    return grid_2d(side, side + int(rng.integers(0, 3)))


def _random_config(rng):
    channels, radix = _GEOMETRIES[int(rng.integers(0, len(_GEOMETRIES)))]
    overrides = dict(
        front_channels=channels,
        back_channels=channels,
        radix=radix,
        fifo_depth=int(rng.integers(radix, radix + 14)),
        epe_queue_depth=int(rng.integers(1, 5)),
        fe_out_depth=int(rng.integers(1, 5)),
        vertex_combining=bool(rng.integers(0, 2)),
    )
    groups = [g for g in (1, 2, 4, 8) if channels % g == 0]
    overrides["dispatcher_group"] = int(groups[int(rng.integers(0, len(groups)))])
    makers = (higraph, higraph_mini, graphdyns,
              lambda **kw: ablation(opt_o=True, opt_d=True, **kw))
    maker = makers[int(rng.integers(0, len(makers)))]
    return maker(**overrides)


def build_case(seed):
    """Everything one fuzz seed denotes, as a dict (deterministic)."""
    rng = np.random.default_rng(seed)
    graph = _random_graph(rng)
    config = _random_config(rng)
    algorithm = _ALGORITHMS[int(rng.integers(0, len(_ALGORITHMS)))]
    source = int(rng.integers(0, graph.num_vertices))
    sliced = bool(rng.integers(0, 4) == 0)  # 1-in-4 cases run sliced
    num_slices = int(rng.integers(2, 5)) if sliced else 0
    return dict(seed=seed, graph=graph, config=config,
                algorithm=algorithm, source=source, sliced=sliced,
                num_slices=num_slices)


def _run_case(case, engine):
    if case["sliced"]:
        slices = partition_by_destination(case["graph"], case["num_slices"])
        sim = SlicedAcceleratorSim(case["config"], case["graph"],
                                   _make_algorithm(case["algorithm"]),
                                   slices=slices, engine=engine)
        return sim.run(source=case["source"])
    return simulate(case["config"], case["graph"],
                    _make_algorithm(case["algorithm"]),
                    source=case["source"], engine=engine)


def _replay_command(seed):
    return (f"REPRO_FUZZ_SEED={seed} PYTHONPATH=src python -m pytest "
            f"tests/test_engine_fuzz.py -k fuzz_case -x")


@pytest.mark.parametrize("seed", _fuzz_seeds())
def test_fuzz_case(seed):
    case = build_case(seed)
    mode = (f"sliced[{case['num_slices']}]" if case["sliced"]
            else "unsliced")
    ref = _run_case(case, "reference")
    for engine in ENGINES:
        if engine == "reference":
            continue
        res = _run_case(case, engine)
        if res.stats.to_dict() != ref.stats.to_dict():
            pytest.fail(
                f"fuzz seed {seed} ({mode}): "
                + divergence_message(
                    engine, case["algorithm"], case["graph"],
                    case["config"], case["source"],
                    ref.stats.to_dict(), res.stats.to_dict(),
                    repro=_replay_command(seed)))
        assert np.array_equal(ref.properties, res.properties), (
            f"fuzz seed {seed} ({mode}): properties diverge "
            f"reference vs {engine}; reproduce: {_replay_command(seed)}")


def test_case_builder_is_deterministic():
    """The same seed must denote the same case in every process —
    otherwise the replay command in a failure message is useless."""
    a, b = build_case(FUZZ_SEED_BASE), build_case(FUZZ_SEED_BASE)
    assert a["algorithm"] == b["algorithm"]
    assert a["source"] == b["source"]
    assert a["sliced"] == b["sliced"]
    assert a["config"].to_dict() == b["config"].to_dict()
    assert a["graph"].num_vertices == b["graph"].num_vertices
    assert a["graph"].num_edges == b["graph"].num_edges
    assert np.array_equal(a["graph"].dst, b["graph"].dst)


def test_seed_env_replays_single_case(monkeypatch):
    monkeypatch.setenv("REPRO_FUZZ_SEED", "12345")
    assert _fuzz_seeds() == [12345]
    monkeypatch.delenv("REPRO_FUZZ_SEED")
    monkeypatch.setenv("REPRO_FUZZ_CASES", "3")
    assert len(_fuzz_seeds()) == 3
