"""Unit + property tests for FIFO models (incl. the paper's nW1R FIFO)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, FifoOverflowError, SimulationError
from repro.hw import Fifo, MultiWriteFifo


class TestFifo:
    def test_order_preserved(self):
        f = Fifo(4)
        for x in (1, 2, 3):
            f.push(x)
        assert [f.pop() for _ in range(3)] == [1, 2, 3]

    def test_capacity_enforced(self):
        f = Fifo(2)
        f.push(1)
        f.push(2)
        assert f.full
        with pytest.raises(OverflowError):
            f.push(3)

    def test_free_and_len(self):
        f = Fifo(3)
        assert f.free == 3 and len(f) == 0 and f.empty
        f.push("a")
        assert f.free == 2 and len(f) == 1 and not f.empty

    def test_peek_does_not_pop(self):
        f = Fifo(2)
        f.push(7)
        assert f.peek() == 7
        assert len(f) == 1

    def test_peak_occupancy_tracked(self):
        f = Fifo(4)
        f.push(1)
        f.push(2)
        f.pop()
        f.push(3)
        assert f.peak_occupancy == 2
        assert f.total_pushes == 3

    def test_clear(self):
        f = Fifo(2)
        f.push(1)
        f.clear()
        assert f.empty

    def test_clear_resets_stats_for_reuse(self):
        """Regression: a cleared (reset) FIFO must not leak the previous
        run's peak_occupancy / total_pushes into the next one."""
        f = Fifo(4)
        f.push(1)
        f.push(2)
        f.clear()
        assert f.peak_occupancy == 0
        assert f.total_pushes == 0
        f.push(3)
        assert f.peak_occupancy == 1
        assert f.total_pushes == 1

    def test_reset_stats_keeps_contents(self):
        f = Fifo(4)
        f.push(1)
        f.push(2)
        f.reset_stats()
        assert len(f) == 2
        assert f.peak_occupancy == 0
        assert f.total_pushes == 0

    def test_overflow_error_is_actionable(self):
        f = Fifo(2)
        f.push(1)
        f.push(2)
        with pytest.raises(FifoOverflowError, match=r"occupancy 2/2"):
            f.push(3)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            Fifo(0)

    @given(ops=st.lists(st.one_of(st.integers(0, 100), st.none()), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_behaves_like_bounded_deque(self, ops):
        """Push ints / pop on None; must match a plain list model."""
        from collections import deque
        f, model = Fifo(8), deque()
        for op in ops:
            if op is None:
                if model:
                    assert f.pop() == model.popleft()
                else:
                    assert f.empty
            else:
                if len(model) < 8:
                    f.push(op)
                    model.append(op)
                else:
                    assert f.full
            assert len(f) == len(model)


class TestOverflowTaxonomy:
    """Overflow is a simulator-invariant violation AND an OverflowError.

    The simulator's deliberate failures all derive from ``ReproError``;
    pre-taxonomy callers that catch ``OverflowError`` keep working.
    """

    def test_push_raises_simulation_error(self):
        f = Fifo(1)
        f.push(1)
        with pytest.raises(SimulationError):
            f.push(2)

    def test_push_keeps_overflow_error_compatibility(self):
        f = Fifo(1)
        f.push(1)
        with pytest.raises(OverflowError):
            f.push(2)

    def test_push_many_over_ports_in_taxonomy(self):
        f = MultiWriteFifo(8, write_ports=2)
        with pytest.raises(FifoOverflowError):
            f.push_many([1, 2, 3])

    def test_push_many_over_free_in_taxonomy(self):
        f = MultiWriteFifo(2, write_ports=2)
        f.push(1)
        with pytest.raises(FifoOverflowError):
            f.push_many([2, 3])


class TestMultiWriteFifo:
    def test_ready_requires_n_free_slots(self):
        """Paper §3.1: an nW1R FIFO accepts only when free >= n."""
        f = MultiWriteFifo(4, write_ports=4)
        assert f.ready
        f.push(1)
        assert not f.ready      # 3 free < 4 ports
        f.pop()
        assert f.ready

    def test_push_many_within_ports(self):
        f = MultiWriteFifo(4, write_ports=2)
        f.push_many([1, 2])
        assert len(f) == 2

    def test_push_many_exceeding_ports_rejected(self):
        f = MultiWriteFifo(8, write_ports=2)
        with pytest.raises(OverflowError):
            f.push_many([1, 2, 3])

    def test_push_many_overflow_rejected(self):
        f = MultiWriteFifo(2, write_ports=2)
        f.push(1)
        with pytest.raises(OverflowError):
            f.push_many([2, 3])

    def test_overflow_reports_capacity_occupancy_and_ports(self):
        """Overflow reports must be actionable: capacity, occupancy and
        write-port count all appear in the message."""
        f = MultiWriteFifo(4, write_ports=2)
        f.push(1)
        f.push(2)
        f.push(3)
        with pytest.raises(FifoOverflowError,
                           match=r"2 pushes into 1 free slots \(capacity 4, "
                                 r"occupancy 3, 2 write ports\)"):
            f.push_many([4, 5])
        with pytest.raises(FifoOverflowError, match=r"capacity 4, occupancy 3"):
            f.push_many([4, 5, 6])

    def test_capacity_below_ports_rejected(self):
        with pytest.raises(ConfigError):
            MultiWriteFifo(2, write_ports=4)

    def test_low_utilization_of_large_radix(self):
        """The §3.1 criticism of the naive solution: with 32 write ports
        and capacity 32, a single resident datum blocks all writers."""
        f = MultiWriteFifo(32, write_ports=32)
        f.push("stuck")
        assert not f.ready
        # a radix-2 FIFO with the same occupancy ratio still accepts
        g = MultiWriteFifo(32, write_ports=2)
        g.push("stuck")
        assert g.ready
