"""Tests for arbitration policies (round-robin, odd-even, greedy claim)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.hw import GreedyClaimArbiter, OddEvenArbiter, RoundRobinArbiter


class TestRoundRobin:
    def test_single_requester_wins(self):
        arb = RoundRobinArbiter(4)
        assert arb.arbitrate([False, True, False, False]) == 1

    def test_no_request_returns_none(self):
        arb = RoundRobinArbiter(2)
        assert arb.arbitrate([False, False]) is None

    def test_rotation_gives_fairness(self):
        arb = RoundRobinArbiter(3)
        winners = [arb.arbitrate([True, True, True]) for _ in range(6)]
        assert winners == [0, 1, 2, 0, 1, 2]

    def test_conflicts_counted(self):
        arb = RoundRobinArbiter(3)
        arb.arbitrate([True, True, True])
        assert arb.conflicts == 2
        assert arb.grants == 1

    def test_wrong_width_rejected(self):
        with pytest.raises(ConfigError):
            RoundRobinArbiter(2).arbitrate([True])

    @given(requests=st.lists(st.booleans(), min_size=4, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_grant_is_a_requester(self, requests):
        arb = RoundRobinArbiter(4)
        winner = arb.arbitrate(requests)
        if winner is None:
            assert not any(requests)
        else:
            assert requests[winner]


def reads_for(channel, u, n):
    """Offset-array reads of a vertex routed to ``channel``: banks
    u % n and (u+1) % n with addresses u and u+1 (paper Fig. 3 ①)."""
    return ((u % n, u), ((u + 1) % n, u + 1))


class TestOddEven:
    def test_priority_parity_alternates(self):
        arb = OddEvenArbiter(4)
        assert arb.parity == 0
        arb.arbitrate([None] * 4)
        assert arb.parity == 1
        arb.arbitrate([None] * 4)
        assert arb.parity == 0

    def test_adjacent_conflict_resolved_by_priority(self):
        """Channels 0 and 1 both need bank 1 at *different* addresses
        (vertices 0 and 5 on 4 channels): even channel wins on even
        parity, the odd channel issues unconditionally on the next."""
        n = 4
        arb = OddEvenArbiter(n)
        reqs = [reads_for(0, 0, n), reads_for(1, 5, n), None, None]
        granted = arb.arbitrate(reqs)
        assert 0 in granted and 1 not in granted
        granted = arb.arbitrate(reqs)
        assert 1 in granted

    def test_consecutive_vertices_share_offset_read(self):
        """Vertices u and u+1 on adjacent channels share the (bank, addr)
        boundary read, so both issue in the same cycle — the regular
        pattern PageRank produces (§5.3: front-end opts gain nothing on
        PR because accesses are already in order)."""
        n = 4
        arb = OddEvenArbiter(n)
        reqs = [reads_for(i, i, n) for i in range(n)]
        granted = arb.arbitrate(reqs)
        # channels 0..2 chain through shared boundary addresses; channel
        # 3 wraps onto bank 0 with a different address and must defer.
        assert sorted(granted) == [0, 1, 2]
        assert 3 in arb.arbitrate(reqs)   # odd parity: 3 issues next cycle

    def test_non_adjacent_channels_coexist(self):
        n = 4
        arb = OddEvenArbiter(n)
        reqs = [reads_for(0, 0, n), None, reads_for(2, 2, n), None]
        assert sorted(arb.arbitrate(reqs)) == [0, 2]

    def test_shared_address_merges(self):
        """Two channels reading the *same* (bank, addr) both issue —
        "their target addresses are the same with those who have
        occupied the read channels" (§4.1)."""
        arb = OddEvenArbiter(4)
        # channel 1 reads banks (1,2) addr (1,2); channel 2 reads banks
        # (2,3) addr (2,3): bank 2 shared with identical address 2.
        reqs = [None, ((1, 1), (2, 2)), ((2, 2), (3, 3)), None]
        granted = arb.arbitrate(reqs)
        assert sorted(granted) == [1, 2]

    def test_deferral_counted(self):
        n = 2
        arb = OddEvenArbiter(n)
        reqs = [reads_for(0, 0, n), reads_for(1, 1, n)]
        arb.arbitrate(reqs)
        assert arb.deferrals == 1

    def test_all_even_issue_unconditionally(self):
        """Same-parity channels can never conflict (banks i, i+1 with i
        even are disjoint across even channels), so priority channels
        always all issue."""
        n = 8
        arb = OddEvenArbiter(n)
        reqs = [reads_for(i, i, n) for i in range(n)]
        granted = arb.arbitrate(reqs)
        assert {0, 2, 4, 6} <= set(granted)

    def test_wrong_width_rejected(self):
        with pytest.raises(ConfigError):
            OddEvenArbiter(2).arbitrate([None])

    @given(mask=st.lists(st.booleans(), min_size=8, max_size=8),
           cycles=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_grants_never_conflict(self, mask, cycles):
        """Property: granted channels' claims are mutually consistent."""
        n = 8
        arb = OddEvenArbiter(n)
        for _ in range(cycles):
            reqs = [reads_for(i, i, n) if mask[i] else None for i in range(n)]
            granted = arb.arbitrate(reqs)
            claimed = {}
            for i in granted:
                for bank, addr in reqs[i]:
                    assert claimed.get(bank, addr) == addr
                    claimed[bank] = addr


class TestGreedyClaim:
    def test_grants_disjoint_sets(self):
        arb = GreedyClaimArbiter(4)
        reqs = [((0, 0),), ((1, 1),), ((0, 9),), None]
        granted = arb.arbitrate(reqs)
        assert 0 in granted and 1 in granted and 2 not in granted

    def test_rotating_start_fairness(self):
        arb = GreedyClaimArbiter(2)
        reqs = [((0, 0),), ((0, 5),)]   # always conflicting
        first = arb.arbitrate(reqs)
        second = arb.arbitrate(reqs)
        assert first != second          # the loser eventually wins

    def test_same_address_exclusive_by_default(self):
        """The plain baseline arbiter claims bank ports exclusively —
        broadcast sharing is the §4.1 odd-even arbiter's feature."""
        arb = GreedyClaimArbiter(2)
        reqs = [((3, 7),), ((3, 7),)]
        assert len(arb.arbitrate(reqs)) == 1

    def test_same_address_shares_when_merge_enabled(self):
        arb = GreedyClaimArbiter(2, merge_same_address=True)
        reqs = [((3, 7),), ((3, 7),)]
        assert sorted(arb.arbitrate(reqs)) == [0, 1]

    def test_deferrals_counted(self):
        arb = GreedyClaimArbiter(2)
        arb.arbitrate([((0, 0),), ((0, 1),)])
        assert arb.deferrals == 1
