"""Tests for the sweep subsystem: planning, caching, parallel execution."""

import json

import pytest

from repro.accel import AcceleratorConfig, graphdyns, higraph
from repro.errors import SweepError
from repro.graph import rmat
from repro.sweep import (
    GraphSpec,
    ResultCache,
    SweepJob,
    code_version,
    execute_job,
    graph_fingerprint,
    plan_jobs,
    resolve_workers,
    run_sweep,
)

SMALL = GraphSpec("VT", scale=0.03)


@pytest.fixture(scope="module")
def tiny_graph():
    return rmat(7, 4.0, seed=5, name="tiny")


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------

class TestPlanning:
    def test_matrix_expansion_and_order(self):
        jobs = plan_jobs(["BFS", "SSSP"], ["VT", "R14"],
                         {"HiGraph": higraph(), "GraphDynS": graphdyns()})
        assert len(jobs) == 8
        # graphs outermost, then algorithms, then configs
        assert [j.describe() for j in jobs[:4]] == [
            "BFS/VT/HiGraph", "BFS/VT/GraphDynS",
            "SSSP/VT/HiGraph", "SSSP/VT/GraphDynS"]
        assert all(j.tags["graph"] == "R14" for j in jobs[4:])

    def test_sweep_axes_multiply_configs(self):
        jobs = plan_jobs(["PR"], ["R14"], {"HiGraph": higraph()},
                         sweep_axes={"fifo_depth": (40, 160),
                                     "vertex_combining": (True, False)})
        assert len(jobs) == 4
        assert {(j.config.fifo_depth, j.config.vertex_combining)
                for j in jobs} == {(40, True), (40, False),
                                   (160, True), (160, False)}
        assert jobs[0].tags["fifo_depth"] == 40

    def test_algorithm_kwargs_pairs(self):
        jobs = plan_jobs([("PR", {"iterations": 3})], ["VT"],
                         {"HiGraph": higraph()})
        assert jobs[0].make_algorithm().default_iterations == 3

    def test_plain_config_iterable_labelled_by_name(self):
        jobs = plan_jobs(["BFS"], ["VT"], [higraph(), graphdyns()])
        assert [j.tags["config"] for j in jobs] == ["HiGraph", "GraphDynS"]

    def test_empty_axes_rejected(self):
        with pytest.raises(SweepError):
            plan_jobs(["BFS"], ["VT"], {"H": higraph()},
                      sweep_axes={"fifo_depth": ()})

    def test_unknown_axis_rejected(self):
        with pytest.raises(SweepError):
            plan_jobs(["BFS"], ["VT"], {"H": higraph()},
                      sweep_axes={"no_such_field": (1, 2)})

    def test_empty_dimension_rejected(self):
        with pytest.raises(SweepError):
            plan_jobs([], ["VT"], {"H": higraph()})
        with pytest.raises(SweepError):
            plan_jobs(["BFS"], [], {"H": higraph()})
        with pytest.raises(SweepError):
            plan_jobs(["BFS"], ["VT"], {})

    def test_bad_graph_entry_rejected(self):
        with pytest.raises(SweepError):
            plan_jobs(["BFS"], [42], {"H": higraph()})


class TestFingerprints:
    def test_spec_fingerprint_is_symbolic(self):
        assert graph_fingerprint(GraphSpec("VT", 0.5)) == "spec:VT:0.5:None"

    def test_csr_fingerprint_tracks_content(self, tiny_graph):
        fp = graph_fingerprint(tiny_graph)
        assert fp == graph_fingerprint(tiny_graph)
        other = tiny_graph.with_weights(tiny_graph.weights + 1)
        assert graph_fingerprint(other) != fp

    def test_cache_key_depends_on_each_component(self):
        version = code_version()
        base = SweepJob(graph=SMALL, algorithm="BFS", config=higraph())
        key = base.cache_key(version)
        assert key == SweepJob(graph=SMALL, algorithm="BFS",
                               config=higraph()).cache_key(version)
        variations = [
            SweepJob(graph=GraphSpec("VT", scale=0.06), algorithm="BFS",
                     config=higraph()),
            SweepJob(graph=SMALL, algorithm="SSSP", config=higraph()),
            SweepJob(graph=SMALL, algorithm="BFS", config=graphdyns()),
            SweepJob(graph=SMALL, algorithm="BFS", config=higraph(), source=1),
            SweepJob(graph=SMALL, algorithm="BFS", config=higraph(),
                     max_iterations=2),
        ]
        assert len({v.cache_key(version) for v in variations} | {key}) == 6
        assert base.cache_key("other-code-version") != key

    def test_tags_do_not_affect_cache_key(self):
        version = code_version()
        a = SweepJob(graph=SMALL, algorithm="BFS", config=higraph(),
                     tags={"graph": "VT"})
        b = SweepJob(graph=SMALL, algorithm="BFS", config=higraph(),
                     tags={"anything": "else"})
        assert a.cache_key(version) == b.cache_key(version)


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------

class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        job = SweepJob(graph=SMALL, algorithm="BFS", config=higraph())
        stats = execute_job(job)
        key = job.cache_key(code_version())
        assert cache.get(key) is None
        cache.put(key, stats)
        restored = cache.get(key)
        assert restored is not None
        assert restored.to_dict() == stats.to_dict()
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None
        assert not path.exists()

    def test_stale_schema_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"stats": {"no_such_field": 1}}))
        assert cache.get(key) is None

    def test_entries_are_auditable_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = SweepJob(graph=SMALL, algorithm="BFS", config=higraph())
        key = job.cache_key(code_version())
        cache.put(key, execute_job(job), provenance={"job": job.describe()})
        payload = json.loads(cache._path(key).read_text())
        assert payload["key"] == key
        assert payload["provenance"]["job"] == "BFS/VT/HiGraph"
        assert payload["stats"]["algorithm"] == "BFS"

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = SweepJob(graph=SMALL, algorithm="BFS", config=higraph())
        cache.put(job.cache_key(code_version()), execute_job(job))
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_code_version_is_stable_and_hex(self):
        assert code_version() == code_version()
        assert len(code_version()) == 64
        int(code_version(), 16)


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------

def _jobs():
    return plan_jobs(["BFS", ("PR", {"iterations": 2})], [SMALL],
                     {"HiGraph": higraph(), "GraphDynS": graphdyns()})


class TestExecutor:
    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(SweepError):
            resolve_workers(-2)

    def test_serial_results_in_job_order(self):
        outcome = run_sweep(_jobs(), num_workers=1)
        assert [s.algorithm for s in outcome.stats] == ["BFS", "BFS", "PR", "PR"]
        assert [s.config_name for s in outcome.stats] == [
            "HiGraph", "GraphDynS", "HiGraph", "GraphDynS"]
        assert outcome.executed == 4
        assert outcome.wall_seconds > 0

    def test_parallel_identical_to_serial(self):
        jobs = _jobs()
        serial = run_sweep(jobs, num_workers=1)
        parallel = run_sweep(jobs, num_workers=3)
        assert [s.to_dict() for s in serial.stats] == \
               [s.to_dict() for s in parallel.stats]
        assert parallel.workers_used == 3

    def test_inline_graph_jobs_run_in_workers(self, tiny_graph):
        jobs = plan_jobs(["BFS"], [tiny_graph],
                         {"HiGraph": higraph(), "GraphDynS": graphdyns()})
        serial = run_sweep(jobs, num_workers=1)
        parallel = run_sweep(jobs, num_workers=2)
        assert [s.to_dict() for s in serial.stats] == \
               [s.to_dict() for s in parallel.stats]

    def test_cold_then_warm_cache(self, tmp_path):
        jobs = _jobs()
        cold = run_sweep(jobs, num_workers=1, cache=tmp_path / "cache")
        assert (cold.cache_hits, cold.executed) == (0, 4)
        warm = run_sweep(jobs, num_workers=1, cache=tmp_path / "cache")
        assert (warm.cache_hits, warm.executed) == (4, 0)
        assert warm.hit_rate == 1.0
        assert [s.to_dict() for s in warm.stats] == \
               [s.to_dict() for s in cold.stats]

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        jobs = _jobs()
        run_sweep(jobs, num_workers=2, cache=tmp_path / "cache")
        warm = run_sweep(jobs, num_workers=1, cache=tmp_path / "cache")
        assert warm.executed == 0

    def test_duplicate_jobs_simulated_once(self, tmp_path):
        jobs = _jobs() + _jobs()
        outcome = run_sweep(jobs, num_workers=1, cache=tmp_path / "cache")
        assert outcome.executed == 4
        assert outcome.cache_hits == 4       # the duplicate half
        assert [s.to_dict() for s in outcome.stats[:4]] == \
               [s.to_dict() for s in outcome.stats[4:]]

    def test_progress_callback_sees_every_job(self):
        seen = []
        run_sweep(_jobs(), num_workers=1,
                  progress=lambda done, total, job: seen.append((done, total)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_rows_merge_tags_and_metrics(self):
        outcome = run_sweep(_jobs()[:2], num_workers=1)
        rows = outcome.rows(metrics=("gteps",))
        assert rows[0]["algorithm"] == "BFS"
        assert rows[0]["config"] == "HiGraph"
        assert rows[0]["gteps"] == outcome.stats[0].gteps

    def test_no_cache_means_every_job_executes(self):
        outcome = run_sweep(_jobs(), num_workers=1, cache=None)
        assert outcome.executed == 4
        assert outcome.cache_hits == 0
