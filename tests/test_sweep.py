"""Tests for the sweep subsystem: planning, caching, parallel execution."""

import json

import pytest

from repro.accel import AcceleratorConfig, graphdyns, higraph
from repro.errors import SweepError
from repro.graph import rmat
from repro.sweep import (
    GraphSpec,
    ResultCache,
    SweepJob,
    code_version,
    execute_job,
    graph_fingerprint,
    plan_jobs,
    resolve_workers,
    run_sweep,
    scheduled_order,
)

SMALL = GraphSpec("VT", scale=0.03)


def _stats():
    from repro.accel import SimStats
    return SimStats(config_name="c", algorithm="BFS", graph_name="g")


@pytest.fixture(scope="module")
def tiny_graph():
    return rmat(7, 4.0, seed=5, name="tiny")


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------

class TestPlanning:
    def test_matrix_expansion_and_order(self):
        jobs = plan_jobs(["BFS", "SSSP"], ["VT", "R14"],
                         {"HiGraph": higraph(), "GraphDynS": graphdyns()})
        assert len(jobs) == 8
        # graphs outermost, then algorithms, then configs
        assert [j.describe() for j in jobs[:4]] == [
            "BFS/VT/HiGraph", "BFS/VT/GraphDynS",
            "SSSP/VT/HiGraph", "SSSP/VT/GraphDynS"]
        assert all(j.tags["graph"] == "R14" for j in jobs[4:])

    def test_sweep_axes_multiply_configs(self):
        jobs = plan_jobs(["PR"], ["R14"], {"HiGraph": higraph()},
                         sweep_axes={"fifo_depth": (40, 160),
                                     "vertex_combining": (True, False)})
        assert len(jobs) == 4
        assert {(j.config.fifo_depth, j.config.vertex_combining)
                for j in jobs} == {(40, True), (40, False),
                                   (160, True), (160, False)}
        assert jobs[0].tags["fifo_depth"] == 40

    def test_algorithm_kwargs_pairs(self):
        jobs = plan_jobs([("PR", {"iterations": 3})], ["VT"],
                         {"HiGraph": higraph()})
        assert jobs[0].make_algorithm().default_iterations == 3

    def test_plain_config_iterable_labelled_by_name(self):
        jobs = plan_jobs(["BFS"], ["VT"], [higraph(), graphdyns()])
        assert [j.tags["config"] for j in jobs] == ["HiGraph", "GraphDynS"]

    def test_empty_axes_rejected(self):
        with pytest.raises(SweepError):
            plan_jobs(["BFS"], ["VT"], {"H": higraph()},
                      sweep_axes={"fifo_depth": ()})

    def test_unknown_axis_rejected(self):
        with pytest.raises(SweepError):
            plan_jobs(["BFS"], ["VT"], {"H": higraph()},
                      sweep_axes={"no_such_field": (1, 2)})

    def test_empty_dimension_rejected(self):
        with pytest.raises(SweepError):
            plan_jobs([], ["VT"], {"H": higraph()})
        with pytest.raises(SweepError):
            plan_jobs(["BFS"], [], {"H": higraph()})
        with pytest.raises(SweepError):
            plan_jobs(["BFS"], ["VT"], {})

    def test_bad_graph_entry_rejected(self):
        with pytest.raises(SweepError):
            plan_jobs(["BFS"], [42], {"H": higraph()})


class TestFingerprints:
    def test_spec_fingerprint_is_symbolic(self):
        assert graph_fingerprint(GraphSpec("VT", 0.5)) == "spec:VT:0.5:None"

    def test_csr_fingerprint_tracks_content(self, tiny_graph):
        fp = graph_fingerprint(tiny_graph)
        assert fp == graph_fingerprint(tiny_graph)
        other = tiny_graph.with_weights(tiny_graph.weights + 1)
        assert graph_fingerprint(other) != fp

    def test_cache_key_depends_on_each_component(self):
        version = code_version()
        base = SweepJob(graph=SMALL, algorithm="BFS", config=higraph())
        key = base.cache_key(version)
        assert key == SweepJob(graph=SMALL, algorithm="BFS",
                               config=higraph()).cache_key(version)
        variations = [
            SweepJob(graph=GraphSpec("VT", scale=0.06), algorithm="BFS",
                     config=higraph()),
            SweepJob(graph=SMALL, algorithm="SSSP", config=higraph()),
            SweepJob(graph=SMALL, algorithm="BFS", config=graphdyns()),
            SweepJob(graph=SMALL, algorithm="BFS", config=higraph(), source=1),
            SweepJob(graph=SMALL, algorithm="BFS", config=higraph(),
                     max_iterations=2),
        ]
        assert len({v.cache_key(version) for v in variations} | {key}) == 6
        assert base.cache_key("other-code-version") != key

    def test_tags_do_not_affect_cache_key(self):
        version = code_version()
        a = SweepJob(graph=SMALL, algorithm="BFS", config=higraph(),
                     tags={"graph": "VT"})
        b = SweepJob(graph=SMALL, algorithm="BFS", config=higraph(),
                     tags={"anything": "else"})
        assert a.cache_key(version) == b.cache_key(version)


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------

class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        job = SweepJob(graph=SMALL, algorithm="BFS", config=higraph())
        stats = execute_job(job)
        key = job.cache_key(code_version())
        assert cache.get(key) is None
        cache.put(key, stats)
        restored = cache.get(key)
        assert restored is not None
        assert restored.to_dict() == stats.to_dict()
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None
        assert not path.exists()

    def test_stale_schema_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"stats": {"no_such_field": 1}}))
        assert cache.get(key) is None

    def test_entries_are_auditable_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = SweepJob(graph=SMALL, algorithm="BFS", config=higraph())
        key = job.cache_key(code_version())
        cache.put(key, execute_job(job), provenance={"job": job.describe()})
        payload = json.loads(cache._path(key).read_text())
        assert payload["key"] == key
        assert payload["provenance"]["job"] == "BFS/VT/HiGraph"
        assert payload["stats"]["algorithm"] == "BFS"

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = SweepJob(graph=SMALL, algorithm="BFS", config=higraph())
        cache.put(job.cache_key(code_version()), execute_job(job))
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_code_version_is_stable_and_hex(self):
        assert code_version() == code_version()
        assert len(code_version()) == 64
        int(code_version(), 16)


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------

def _jobs():
    return plan_jobs(["BFS", ("PR", {"iterations": 2})], [SMALL],
                     {"HiGraph": higraph(), "GraphDynS": graphdyns()})


class TestExecutor:
    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(7) == 7
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(SweepError):
            resolve_workers(-2)

    def test_serial_results_in_job_order(self):
        outcome = run_sweep(_jobs(), num_workers=1)
        assert [s.algorithm for s in outcome.stats] == ["BFS", "BFS", "PR", "PR"]
        assert [s.config_name for s in outcome.stats] == [
            "HiGraph", "GraphDynS", "HiGraph", "GraphDynS"]
        assert outcome.executed == 4
        assert outcome.wall_seconds > 0

    def test_parallel_identical_to_serial(self):
        jobs = _jobs()
        serial = run_sweep(jobs, num_workers=1)
        parallel = run_sweep(jobs, num_workers=3)
        assert [s.to_dict() for s in serial.stats] == \
               [s.to_dict() for s in parallel.stats]
        assert parallel.workers_used == 3

    def test_inline_graph_jobs_run_in_workers(self, tiny_graph):
        jobs = plan_jobs(["BFS"], [tiny_graph],
                         {"HiGraph": higraph(), "GraphDynS": graphdyns()})
        serial = run_sweep(jobs, num_workers=1)
        parallel = run_sweep(jobs, num_workers=2)
        assert [s.to_dict() for s in serial.stats] == \
               [s.to_dict() for s in parallel.stats]

    def test_cold_then_warm_cache(self, tmp_path):
        jobs = _jobs()
        cold = run_sweep(jobs, num_workers=1, cache=tmp_path / "cache")
        assert (cold.cache_hits, cold.executed) == (0, 4)
        warm = run_sweep(jobs, num_workers=1, cache=tmp_path / "cache")
        assert (warm.cache_hits, warm.executed) == (4, 0)
        assert warm.hit_rate == 1.0
        assert [s.to_dict() for s in warm.stats] == \
               [s.to_dict() for s in cold.stats]

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        jobs = _jobs()
        run_sweep(jobs, num_workers=2, cache=tmp_path / "cache")
        warm = run_sweep(jobs, num_workers=1, cache=tmp_path / "cache")
        assert warm.executed == 0

    def test_duplicate_jobs_simulated_once(self, tmp_path):
        jobs = _jobs() + _jobs()
        outcome = run_sweep(jobs, num_workers=1, cache=tmp_path / "cache")
        assert outcome.executed == 4
        assert outcome.cache_hits == 4       # the duplicate half
        assert [s.to_dict() for s in outcome.stats[:4]] == \
               [s.to_dict() for s in outcome.stats[4:]]

    def test_progress_callback_sees_every_job(self):
        seen = []
        run_sweep(_jobs(), num_workers=1,
                  progress=lambda done, total, job: seen.append((done, total)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_rows_merge_tags_and_metrics(self):
        outcome = run_sweep(_jobs()[:2], num_workers=1)
        rows = outcome.rows(metrics=("gteps",))
        assert rows[0]["algorithm"] == "BFS"
        assert rows[0]["config"] == "HiGraph"
        assert rows[0]["gteps"] == outcome.stats[0].gteps

    def test_no_cache_means_every_job_executes(self):
        outcome = run_sweep(_jobs(), num_workers=1, cache=None)
        assert outcome.executed == 4
        assert outcome.cache_hits == 0

    def test_job_seconds_recorded_for_executed_only(self, tmp_path):
        jobs = _jobs()
        cold = run_sweep(jobs, num_workers=1, cache=tmp_path / "cache")
        assert len(cold.job_seconds) == 4
        assert all(s > 0 for s in cold.job_seconds)
        warm = run_sweep(jobs, num_workers=1, cache=tmp_path / "cache")
        assert warm.job_seconds == [0.0] * 4

    def test_wall_seconds_in_cache_provenance(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        jobs = _jobs()[:1]
        run_sweep(jobs, num_workers=1, cache=cache)
        key = jobs[0].cache_key(code_version())
        payload = json.loads(cache._path(key).read_text())
        assert payload["provenance"]["wall_seconds"] > 0
        assert cache.wall_seconds(key) == payload["provenance"]["wall_seconds"]
        assert cache.wall_seconds("f" * 64) is None

    def test_scheduled_order_is_largest_first_and_deterministic(self):
        jobs = plan_jobs(["BFS"],
                         [GraphSpec("VT", 0.03), GraphSpec("R16", 0.03),
                          GraphSpec("R14", 0.03)],
                         {"HiGraph": higraph()})
        pending = list(enumerate(jobs))
        order = [job.tags["graph"] for _i, job in scheduled_order(pending)]
        assert order == ["R16", "R14", "VT"]   # by registry edge count
        assert scheduled_order(pending) == scheduled_order(pending)

    def test_pr_jobs_cost_more_than_bfs_on_same_graph(self):
        bfs, pr = plan_jobs(["BFS", ("PR", {"iterations": 2})], [SMALL],
                            {"HiGraph": higraph()})
        assert pr.cost_hint() > bfs.cost_hint()

    def test_learned_cost_model_prefers_cached_wall_seconds(self, tmp_path):
        """ROADMAP follow-up: cached wall_seconds provenance beats the
        static edge-count hint on re-runs where the static hint misranks.

        VT has ~5x the registry edges of R16, so the static order puts
        R16's jobs first; recorded wall times saying R16 is actually the
        slow family must flip the dispatch order."""
        from repro.sweep import learned_cost_model
        jobs = plan_jobs(["BFS"], [GraphSpec("VT", 0.03), GraphSpec("R16", 0.03)],
                         {"HiGraph": higraph(), "GraphDynS": graphdyns()})
        pending = list(enumerate(jobs))
        static = [j.tags["graph"] for _i, j in scheduled_order(pending)]
        assert static[0] == "R16"       # registry edges say R16 is bigger

        cache = ResultCache(tmp_path)
        # same families, measured the other way around: VT slow, R16 fast
        for job, seconds in ((jobs[0], 9.0), (jobs[2], 0.05)):
            cache.put(job.cache_key("v0"), _stats(),
                      provenance={"family": job.family(),
                                  "wall_seconds": seconds})
        cost = learned_cost_model(cache, [j for _i, j in pending])
        assert cost is not None
        learned = [j.tags["graph"] for _i, j in scheduled_order(pending, cost)]
        assert learned[0] == "VT" and learned[1] == "VT"
        # deterministic within a family: index tie-break preserved
        assert scheduled_order(pending, cost) == scheduled_order(pending, cost)

    def test_learned_cost_model_without_data_is_none(self, tmp_path):
        from repro.sweep import learned_cost_model
        jobs = plan_jobs(["BFS"], [SMALL], {"HiGraph": higraph()})
        assert learned_cost_model(None, jobs) is None
        assert learned_cost_model(ResultCache(tmp_path), jobs) is None

    def test_unknown_families_fall_back_to_static_hint(self, tmp_path):
        """A family without measurements ranks by rescaled static cost,
        never raises."""
        from repro.sweep import learned_cost_model
        jobs = plan_jobs(["BFS"], [GraphSpec("VT", 0.03), GraphSpec("R16", 0.03)],
                         {"HiGraph": higraph()})
        cache = ResultCache(tmp_path)
        cache.put(jobs[0].cache_key("v0"), _stats(),
                  provenance={"family": jobs[0].family(), "wall_seconds": 2.0})
        cost = learned_cost_model(cache, jobs)
        assert cost(jobs[0]) == 2.0
        assert cost(jobs[1]) > 0        # static hint rescaled into seconds


# ----------------------------------------------------------------------
# Sliced jobs (§5.3 on the sweep engine)
# ----------------------------------------------------------------------

class TestSlicedJobs:
    def test_sliced_job_matches_direct_sliced_simulation(self, tiny_graph):
        from repro.accel import SlicedAcceleratorSim
        from repro.algorithms import make_algorithm
        from repro.graph import partition_by_destination

        job = SweepJob(graph=tiny_graph, algorithm="PR",
                       algorithm_kwargs={"iterations": 2}, config=higraph(),
                       num_slices=2, offchip_bytes_per_cycle=64.0)
        got = execute_job(job)
        sim = SlicedAcceleratorSim(
            higraph(), tiny_graph, make_algorithm("PR", iterations=2),
            slices=partition_by_destination(tiny_graph, 2),
            offchip_bytes_per_cycle=64.0)
        assert got.to_dict() == sim.run().stats.to_dict()
        assert got.slices == 2

    def test_slicing_changes_cache_key(self):
        version = code_version()
        plain = SweepJob(graph=SMALL, algorithm="PR", config=higraph())
        sliced = SweepJob(graph=SMALL, algorithm="PR", config=higraph(),
                          num_slices=4)
        assert plain.cache_key(version) != sliced.cache_key(version)
        # bandwidth only matters once slicing is on
        other_bw = SweepJob(graph=SMALL, algorithm="PR", config=higraph(),
                            offchip_bytes_per_cycle=128.0)
        assert plain.cache_key(version) == other_bw.cache_key(version)
        sliced_bw = SweepJob(graph=SMALL, algorithm="PR", config=higraph(),
                             num_slices=4, offchip_bytes_per_cycle=128.0)
        assert sliced.cache_key(version) != sliced_bw.cache_key(version)

    def test_invalid_slice_count_rejected(self, tiny_graph):
        job = SweepJob(graph=tiny_graph, algorithm="PR", config=higraph(),
                       num_slices=0)
        with pytest.raises(SweepError):
            execute_job(job)

    def test_sliced_job_round_trips_through_cache(self, tmp_path, tiny_graph):
        job = SweepJob(graph=tiny_graph, algorithm="PR",
                       algorithm_kwargs={"iterations": 2}, config=higraph(),
                       num_slices=2)
        cold = run_sweep([job], num_workers=1, cache=tmp_path / "c")
        warm = run_sweep([job], num_workers=1, cache=tmp_path / "c")
        assert warm.executed == 0
        assert warm.stats[0].to_dict() == cold.stats[0].to_dict()


# ----------------------------------------------------------------------
# Cache GC
# ----------------------------------------------------------------------

class TestCacheGc:
    def _fill(self, tmp_path, count=3):
        cache = ResultCache(tmp_path / "cache")
        jobs = _jobs()[:count]
        run_sweep(jobs, num_workers=1, cache=cache)
        return cache

    def test_entries_oldest_first(self, tmp_path):
        cache = self._fill(tmp_path, 3)
        entries = cache.entries()
        assert len(entries) == 3
        assert [e.mtime for e in entries] == sorted(e.mtime for e in entries)
        assert cache.total_bytes() == sum(e.size_bytes for e in entries)

    def test_gc_without_budgets_is_a_noop(self, tmp_path):
        cache = self._fill(tmp_path, 2)
        stats = cache.gc()
        assert (stats.scanned, stats.removed) == (2, 0)
        assert len(cache) == 2

    def test_gc_by_age_removes_only_old_entries(self, tmp_path):
        import os as _os
        cache = self._fill(tmp_path, 3)
        old = cache.entries()[0]
        _os.utime(old.path, (1.0, 1.0))
        stats = cache.gc(max_age_seconds=3600)
        assert stats.removed == 1
        assert stats.bytes_freed == old.size_bytes
        assert len(cache) == 2
        assert not old.path.exists()

    def test_gc_by_bytes_evicts_oldest_first(self, tmp_path):
        import os as _os
        cache = self._fill(tmp_path, 3)
        entries = cache.entries()
        # force a deterministic age order
        for rank, entry in enumerate(entries):
            _os.utime(entry.path, (100.0 + rank, 100.0 + rank))
        entries = cache.entries()
        keep_budget = entries[-1].size_bytes + entries[-2].size_bytes
        stats = cache.gc(max_bytes=keep_budget)
        assert stats.removed == 1
        survivors = {e.key for e in cache.entries()}
        assert survivors == {entries[-1].key, entries[-2].key}

    def test_gc_dry_run_touches_nothing(self, tmp_path):
        cache = self._fill(tmp_path, 2)
        stats = cache.gc(max_bytes=0, dry_run=True)
        assert stats.removed == 2
        assert len(cache) == 2

    def test_gc_prunes_empty_shard_dirs(self, tmp_path):
        cache = self._fill(tmp_path, 2)
        cache.gc(max_bytes=0)
        assert len(cache) == 0
        assert not any(p.is_dir() for p in cache.root.glob("*"))

    def test_gc_result_reusable_after_eviction(self, tmp_path):
        cache = self._fill(tmp_path, 2)
        cache.gc(max_bytes=0)
        outcome = run_sweep(_jobs()[:2], num_workers=1, cache=cache)
        assert outcome.executed == 2     # re-simulated after eviction
