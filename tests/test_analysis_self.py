"""Meta-tests: the analyzer run against this repository, and the
engine-registry invariants the PR 6 audit fixed."""

import dataclasses
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestSelfLint:
    def test_repository_lints_clean(self, capsys):
        """`repro lint` exits 0 on the repo itself: every rule passes or
        the finding is covered by a justified baseline entry."""
        assert main(["lint", "--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_no_todo_justifications_in_committed_baseline(self, capsys):
        """The committed baseline is fully justified and not stale —
        strict mode only tolerates real warnings, and there are none."""
        assert main(["lint", "--root", str(REPO_ROOT), "--strict"]) == 0

    def test_list_rules_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("module-state", "set-iteration", "id-key",
                        "nondeterministic-call", "cache-key",
                        "telemetry-reset", "engine-compat", "engine-seam",
                        "engine-registry", "c-seam-layout",
                        "c-seam-counters", "c-seam-kernels",
                        "fork-shared-state", "fork-atomic-write",
                        "fork-capture", "exception-hygiene", "no-bytecode",
                        "cli-docs", "lint-docs", "bench-history"):
            assert rule_id in out

    def test_bad_input_exits_2_with_one_liner(self, capsys):
        assert main(["lint", "--rule", "no-such-rule"]) == 2
        err = capsys.readouterr().err
        assert "unknown lint rule" in err
        assert "Traceback" not in err

    def test_json_report_shape(self, capsys):
        import json
        assert main(["lint", "--root", str(REPO_ROOT),
                     "--rule", "engine-compat", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"] == ["engine-compat"]
        assert payload["findings"] == []


class TestRegistryInvariants:
    """Regression tests for the module-state audit (the findings the
    analyzer raised on the pre-PR tree, now fixed)."""

    def test_equivalence_map_is_frozen(self):
        from repro.accel.engine import registry
        with pytest.raises(TypeError):
            registry._ENGINE_EQUIVALENCE["batched"] = "tampered"

    def test_equivalent_engines_share_cache_token(self):
        from repro.accel.engine import engine_cache_token
        assert engine_cache_token("reference") == \
            engine_cache_token("batched")

    def test_telemetry_reset_zeroes_every_key(self):
        from repro.accel.engine import FFWD_TELEMETRY, reset_ffwd_telemetry
        for key in FFWD_TELEMETRY:
            FFWD_TELEMETRY[key] = 99
        live = reset_ffwd_telemetry()
        assert live is FFWD_TELEMETRY
        assert all(v == 0 for v in FFWD_TELEMETRY.values())


class TestConfigCoverage:
    """Satellite check: AcceleratorConfig's cache identity is complete
    (the semantic half of the cache-key rule, asserted directly)."""

    def test_to_dict_covers_every_field(self):
        from repro.accel.config import AcceleratorConfig
        config = AcceleratorConfig()
        field_names = {f.name for f in dataclasses.fields(AcceleratorConfig)}
        assert set(config.to_dict()) == field_names

    def test_config_hash_sees_every_field(self):
        from repro.accel.config import AcceleratorConfig
        from repro.analysis.rules.cachekey import _clone_with, _perturbed

        base = AcceleratorConfig()
        fields = dataclasses.fields(AcceleratorConfig)
        base_hash = base.config_hash()
        blind = [f.name for f in fields
                 if _clone_with(AcceleratorConfig, fields, base,
                                f.name).config_hash() == base_hash]
        assert blind == []

    def test_perturbed_always_differs(self):
        from repro.analysis.rules.cachekey import _perturbed
        for value in (True, 0, 1.5, "s", {"k": 1}, [1], (1,), None):
            assert _perturbed(value) != value


class TestStatsSchemaError:
    """The exception-hygiene fix kept the historical ValueError contract
    via dual inheritance (callers catching ValueError still work)."""

    def test_unknown_fields_raise_both_taxonomies(self):
        from repro.accel.stats import SimStats
        from repro.errors import ReproError, StatsSchemaError
        with pytest.raises(StatsSchemaError):
            SimStats.from_dict({"no_such_counter": 1})
        with pytest.raises(ValueError):
            SimStats.from_dict({"no_such_counter": 1})
        with pytest.raises(ReproError):
            SimStats.from_dict({"no_such_counter": 1})
