"""Tests for Replay Engine, range-splitting network, and Dispatcher (§4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mdp import (
    Dispatcher,
    RangeSplitNetwork,
    ReplayEngine,
    split_by_blocks,
    split_request,
)


class TestSplitRequest:
    def test_no_split_needed(self):
        assert split_request(4, 9, banks=16) == [(4, 9)]

    def test_wrap_split(self):
        # banks 14,15 then 0,1,2
        assert split_request(14, 5, banks=16) == [(14, 2), (16, 3)]

    def test_max_len_split(self):
        assert split_request(0, 10, banks=16, max_len=4) == [(0, 4), (4, 4), (8, 2)]

    def test_pieces_concatenate_to_original(self):
        pieces = split_request(37, 23, banks=8)
        assert pieces[0][0] == 37
        assert sum(l for _, l in pieces) == 23
        for (o1, l1), (o2, _) in zip(pieces, pieces[1:]):
            assert o1 + l1 == o2

    def test_zero_length(self):
        assert split_request(5, 0, banks=8) == []

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            split_request(-1, 3, banks=8)
        with pytest.raises(ConfigError):
            split_request(0, -3, banks=8)

    @given(off=st.integers(0, 1000), length=st.integers(0, 200),
           banks=st.sampled_from([4, 8, 16, 32]),
           max_len=st.sampled_from([None, 2, 7, 16]))
    @settings(max_examples=80, deadline=None)
    def test_properties(self, off, length, banks, max_len):
        if max_len is not None and max_len < 1:
            return
        pieces = split_request(off, length, banks, max_len)
        # conservation + contiguity
        assert sum(l for _, l in pieces) == length
        cursor = off
        limit = max_len or banks
        for o, l in pieces:
            assert o == cursor
            assert 1 <= l <= limit
            # non-wrapping: the piece stays inside one pass of the banks
            assert (o % banks) + l <= banks
            cursor = o + l


class TestSplitByBlocks:
    def test_paper_example_off4_len9(self):
        """Fig. 6 narrative: Off 4 Len 9 over 16 banks splits at the
        8-bank boundary into (4,4) and (8,5)."""
        subs = split_by_blocks(4, 9, banks=16, block=8)
        assert subs == [(4, 4, 0), (8, 5, 1)]

    def test_aligned_no_split(self):
        assert split_by_blocks(8, 8, banks=16, block=8) == [(8, 8, 1)]

    def test_fine_blocks(self):
        subs = split_by_blocks(2, 8, banks=16, block=4)
        assert subs == [(2, 2, 0), (4, 4, 1), (8, 2, 2)]

    def test_wrapping_piece_rejected(self):
        with pytest.raises(ConfigError):
            split_by_blocks(14, 5, banks=16, block=8)

    @given(off=st.integers(0, 64), length=st.integers(0, 16),
           block=st.sampled_from([2, 4, 8]))
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_block_fit(self, off, length, block):
        banks = 16
        if (off % banks) + length > banks:
            return
        subs = split_by_blocks(off, length, banks, block)
        assert sum(l for _, l, _ in subs) == length
        for o, l, idx in subs:
            b = o % banks
            assert b // block == idx
            assert (b % block) + l <= block


class TestReplayEngine:
    def test_streams_pieces_one_per_cycle(self):
        eng = ReplayEngine(banks=8, max_len=8)
        eng.accept(6, 10, "v")    # banks 6..15 -> wraps: (6,2) then (8,8)
        first = eng.emit()
        assert first == (6, 2, "v")
        eng.consume()
        second = eng.emit()
        assert second == (8, 8, "v")
        eng.consume()
        assert eng.emit() is None
        assert not eng.busy

    def test_emit_without_consume_is_idempotent(self):
        eng = ReplayEngine(banks=8)
        eng.accept(0, 4, None)
        assert eng.emit() == eng.emit()

    def test_queue_depth_backpressure(self):
        eng = ReplayEngine(banks=8, queue_depth=1)
        assert eng.accept(0, 4, None)
        assert not eng.accept(4, 4, None)
        assert not eng.can_accept

    def test_counts(self):
        eng = ReplayEngine(banks=4, max_len=2)
        eng.accept(0, 4, None)
        while eng.emit() is not None:
            eng.consume()
        assert eng.requests_accepted == 1
        assert eng.pieces_emitted == 2


class TestRangeSplitNetwork:
    def make(self, banks=16, disp=4, depth=8):
        return RangeSplitNetwork(banks=banks, num_dispatchers=disp,
                                 radix=2, fifo_depth=depth)

    def drain(self, net, max_cycles=1000):
        got = []
        ready = [True] * net.num_dispatchers
        cycles = 0
        while not net.drained:
            got.extend(net.deliver(ready))
            net.advance()
            cycles += 1
            assert cycles < max_cycles
        return got

    def test_paper_example_reaches_two_dispatchers(self):
        """Off 4, Len 9 over 16 banks / 4 dispatchers: dispatcher 1 gets
        banks 4-7 (len 4), dispatchers 2 and 3 share banks 8-12."""
        net = self.make()
        assert net.offer(0, 4, 9, "p")
        got = self.drain(net)
        by_disp = {}
        for d, (off, length, payload) in got:
            by_disp.setdefault(d, []).append((off, length))
            assert payload == "p"
        assert by_disp[1] == [(4, 4)]
        assert by_disp[2] == [(8, 4)]
        assert by_disp[3] == [(12, 1)]

    def test_single_bank_piece(self):
        net = self.make()
        net.offer(2, 13, 1, None)
        got = self.drain(net)
        assert got == [(3, (13, 1, None))]

    def test_lengths_conserved(self):
        net = self.make()
        net.offer(0, 0, 16, "all")
        got = self.drain(net)
        assert sum(l for _, (_, l, _) in got) == 16
        assert net.delivered_edges == 16
        assert net.offered_edges == 16

    def test_pieces_fit_dispatcher_groups(self):
        net = self.make(banks=32, disp=8)
        rng = np.random.default_rng(0)
        for i in range(20):
            off = int(rng.integers(0, 64))
            length = int(rng.integers(1, 32))
            start = off % 32
            if start + length > 32:
                length = 32 - start
            net.offer(i % 8, off, length, i)
        got = self.drain(net)
        g = net.group_width
        for d, (off, length, _) in got:
            start = off % 32
            assert d * g <= start and start + length <= (d + 1) * g

    def test_wrapping_offer_rejected(self):
        net = self.make()
        with pytest.raises(ConfigError):
            net.offer(0, 14, 5, None)   # crosses bank 15 -> 0

    def test_zero_length_rejected(self):
        net = self.make()
        with pytest.raises(ConfigError):
            net.offer(0, 0, 0, None)

    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            RangeSplitNetwork(banks=16, num_dispatchers=3)
        with pytest.raises(ConfigError):
            RangeSplitNetwork(banks=16, num_dispatchers=32)
        with pytest.raises(ConfigError):
            RangeSplitNetwork(banks=16, num_dispatchers=4, radix=8)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_random_traffic_edge_conservation(self, seed):
        rng = np.random.default_rng(seed)
        net = self.make(banks=16, disp=4, depth=16)
        offered = 0
        delivered = []
        for _ in range(50):
            delivered.extend(net.deliver([True] * 4))
            net.advance()
            ch = int(rng.integers(0, 4))
            off = int(rng.integers(0, 32))
            max_take = 16 - (off % 16)
            length = int(rng.integers(1, max_take + 1))
            if net.offer(ch, off, length, None):
                offered += length
        delivered.extend(self.drain(net))
        assert sum(l for _, (_, l, _) in delivered) == offered
        # every delivered edge index appears exactly once per offer set
        assert net.delivered_pieces >= net.offered_pieces  # splits only add


class TestDispatcher:
    def test_issues_consecutive_banks(self):
        d = Dispatcher(index=1, banks=16, group_width=4)
        d.accept(5, 3, "v")
        reads = d.issue(lambda b: True)
        assert reads == [(5, 5, "v"), (6, 6, "v"), (7, 7, "v")]

    def test_blocks_until_epe_space(self):
        d = Dispatcher(index=0, banks=16, group_width=4)
        d.accept(0, 2, None)
        assert d.issue(lambda b: b != 1) == []   # bank 1 has no space
        assert d.blocked_cycles == 1
        assert len(d.issue(lambda b: True)) == 2

    def test_rejects_oversized_piece(self):
        d = Dispatcher(index=0, banks=16, group_width=4)
        with pytest.raises(ConfigError):
            d.accept(0, 5, None)

    def test_queue_backpressure(self):
        d = Dispatcher(index=0, banks=16, group_width=4, queue_depth=1)
        assert d.accept(0, 1, None)
        assert not d.accept(1, 1, None)
        assert not d.can_accept

    def test_one_request_per_cycle(self):
        d = Dispatcher(index=0, banks=16, group_width=4)
        d.accept(0, 1, "a")
        d.accept(1, 1, "b")
        first = d.issue(lambda b: True)
        assert [p for _, _, p in first] == ["a"]

    def test_statistics(self):
        d = Dispatcher(index=0, banks=16, group_width=4)
        d.accept(0, 3, None)
        d.issue(lambda b: True)
        assert d.issued_requests == 1
        assert d.issued_reads == 3
