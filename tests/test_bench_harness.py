"""Tests for the benchmark harness, figure runners and report builder."""

import os

import pytest

from repro.accel import higraph
from repro.bench import (
    BENCH_PR_ITERATIONS,
    DEFAULT_BENCH_SCALES,
    REPORT_SECTIONS,
    bench_scale,
    build_report,
    collect_results,
    fig11_rows,
    fig12_rows,
    format_table,
    load_bench_graph,
    make_bench_algorithm,
    paper_configs,
    run_matrix,
    write_report,
)
from repro.graph import DATASET_ORDER, chain, rmat
from repro.graph.datasets import SCALE_ENV_VAR


class TestHarness:
    def test_default_scales_cover_all_datasets(self):
        assert set(DEFAULT_BENCH_SCALES) == set(DATASET_ORDER)

    def test_bench_scale_env_override(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "0.5")
        assert bench_scale("R16") == 0.5
        monkeypatch.delenv(SCALE_ENV_VAR)
        assert bench_scale("R16") == DEFAULT_BENCH_SCALES["R16"]

    def test_bench_graphs_have_bounded_size(self):
        for key in DATASET_ORDER:
            g = load_bench_graph(key)
            assert g.num_edges <= 140_000, key

    def test_bench_pr_iterations(self):
        alg = make_bench_algorithm("PR")
        assert alg.default_iterations == BENCH_PR_ITERATIONS
        assert make_bench_algorithm("BFS").name == "BFS"

    def test_paper_configs_order_and_names(self):
        cfgs = paper_configs()
        assert list(cfgs) == ["GraphDynS", "HiGraph-mini", "HiGraph"]

    def test_run_matrix_tiny(self):
        matrix = run_matrix(algorithms=("BFS",), datasets=("VT",),
                            configs={"HiGraph": higraph()})
        stats = matrix.get("BFS", "VT", "HiGraph")
        assert stats.edges_processed > 0
        assert stats.gteps > 0

    def test_run_matrix_parallel_and_cached_identical(self, tmp_path):
        """The sweep engine must not change a single counter: serial,
        multiprocess and cache-hit matrices agree bit for bit."""
        kw = dict(algorithms=("BFS", "PR"), datasets=("VT",))
        serial = run_matrix(**kw)
        parallel = run_matrix(jobs=2, **kw)
        cached_cold = run_matrix(cache=tmp_path / "cache", **kw)
        cached_warm = run_matrix(cache=tmp_path / "cache", **kw)
        for key, stats in serial.stats.items():
            for other in (parallel, cached_cold, cached_warm):
                assert other.stats[key].to_dict() == stats.to_dict(), key

    def test_run_matrix_uses_bench_pr_iterations(self):
        matrix = run_matrix(algorithms=("PR",), datasets=("VT",),
                            configs={"HiGraph": higraph()})
        assert matrix.get("PR", "VT", "HiGraph").iterations == BENCH_PR_ITERATIONS


class TestFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "2.50" in text and "0.12" in text

    def test_format_empty(self):
        assert format_table([]) == "(no rows)\n"

    def test_format_subset_columns(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        assert "b" not in text.splitlines()[0]


class TestFigureRunners:
    @pytest.fixture(scope="class")
    def tiny(self):
        return rmat(8, 16.0, seed=77)

    def test_fig11_rows_structure(self, tiny):
        rows = fig11_rows(graph=tiny)
        designs = {r["design"] for r in rows}
        assert designs == {"GraphDynS", "HiGraph"}
        hi = [r for r in rows if r["design"] == "HiGraph"]
        assert [r["back_channels"] for r in hi] == [32, 64, 128, 256]
        for r in hi:
            assert r["frequency_ghz"] == 1.0

    def test_fig12_rows_structure(self, tiny):
        rows = fig12_rows(graph=tiny, buffer_sizes=(8, 40))
        assert len(rows) == 4
        assert {r["design"] for r in rows} == {"MDP-network", "FIFO+crossbar"}


class TestReport:
    def test_collect_and_build(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig08_speedup.txt").write_text("fake table\n")
        found = collect_results(str(results))
        assert found == {"fig08_speedup": "fake table\n"}
        report = build_report(str(results))
        assert "Fig. 8" in report
        assert "fake table" in report
        assert "Missing sections" in report   # the rest not produced

    def test_write_report(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        for key, _ in REPORT_SECTIONS:
            (results / f"{key}.txt").write_text(f"{key} data\n")
        out = tmp_path / "report.md"
        text = write_report(str(results), str(out))
        assert out.read_text() == text
        assert "Missing sections" not in text
        for _, title in REPORT_SECTIONS:
            assert title in text

    def test_empty_results_dir(self, tmp_path):
        report = build_report(str(tmp_path))
        assert "Missing sections" in report
