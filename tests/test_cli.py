"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.dataset == "R14"
        assert args.config == "all"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--dataset", "nope"])


class TestCommands:
    def test_datasets_prints_table2(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for key in ("VT", "EP", "SL", "TW", "R14", "R16"):
            assert key in out
        assert "1048576" in out   # R14 edges

    def test_frequency_lookup(self, capsys):
        assert main(["frequency", "--crossbar-ports", "64"]) == 0
        out = capsys.readouterr().out
        assert "0.720 GHz" in out

    def test_frequency_mdp(self, capsys):
        assert main(["frequency", "--mdp-channels", "32"]) == 0
        out = capsys.readouterr().out
        assert "mdp(32 channels" in out

    def test_netlist_summary(self, capsys):
        assert main(["netlist", "--channels", "8", "--radix", "2"]) == 0
        out = capsys.readouterr().out
        assert "fifo_instances" in out
        assert "24" in out        # 8 channels x 3 stages

    def test_netlist_writes_verilog(self, tmp_path, capsys):
        target = tmp_path / "net.v"
        assert main(["netlist", "--channels", "4", "-o", str(target)]) == 0
        text = target.read_text()
        assert "module mdp_network_n4_r2" in text

    def test_simulate_single_config(self, capsys):
        assert main(["simulate", "--dataset", "VT", "--scale", "0.05",
                     "--algorithm", "BFS", "--config", "higraph"]) == 0
        out = capsys.readouterr().out
        assert "HiGraph" in out
        assert "gteps" in out

    def test_simulate_all_configs(self, capsys):
        assert main(["simulate", "--dataset", "VT", "--scale", "0.05",
                     "--algorithm", "PR", "--pr-iterations", "1"]) == 0
        out = capsys.readouterr().out
        for name in ("GraphDynS", "HiGraph", "HiGraph-mini"):
            assert name in out

    def test_figure_fig4(self, capsys):
        assert main(["figure", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "ports" in out and "256" in out

    def test_figure_radix(self, capsys):
        assert main(["figure", "radix", "--dataset", "R14",
                     "--scale", "0.03125"]) == 0
        out = capsys.readouterr().out
        assert "radix" in out


class TestSweepCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache

    def test_serial_no_cache(self, capsys):
        assert main(["sweep", "--datasets", "VT", "--scale", "0.03",
                     "--algorithms", "BFS", "--configs", "higraph",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "sweep: 1 jobs" in out
        assert "cache hits: 0" in out

    def test_parallel_matches_serial_and_cache_warms(self, tmp_path, capsys):
        argv = ["sweep", "--datasets", "VT", "--scale", "0.03",
                "--algorithms", "BFS,PR", "--cache-dir", str(tmp_path)]
        assert main(argv + ["--jobs", "2"]) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        # identical table rows regardless of workers / cache state
        table = lambda text: text.split("\n\njobs:")[0]
        assert table(cold) == table(warm)
        assert "cache hits: 6 (100%)" in warm
        assert "executed: 0" in warm

    def test_axis_expansion(self, capsys):
        assert main(["sweep", "--datasets", "VT", "--scale", "0.03",
                     "--algorithms", "BFS", "--configs", "higraph",
                     "--axis", "fifo_depth=40,160", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "sweep: 2 jobs" in out
        assert "fifo_depth" in out

    def test_unknown_dataset_fails_cleanly(self, capsys):
        assert main(["sweep", "--datasets", "NOPE"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_unknown_config_fails_cleanly(self, capsys):
        assert main(["sweep", "--datasets", "VT", "--configs", "nope"]) == 2
        assert "unknown config" in capsys.readouterr().err

    def test_malformed_axis_fails_cleanly(self, capsys):
        assert main(["sweep", "--datasets", "VT", "--axis", "fifo_depth"]) == 2
        assert "--axis expects" in capsys.readouterr().err


class TestSweepFigure:
    def test_figure_runs_pure_section(self, capsys):
        # fig4 comes from the timing model: no sweep jobs, no cache needed
        assert main(["sweep", "--figure", "fig4", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4: frequency vs crossbar ports" in out
        assert "jobs: 0" in out

    def test_figure_warms_cache(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        argv = ["sweep", "--figure", "latency", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "executed: 4" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "executed: 0" in warm
        assert "cache hits: 4" in warm

    def test_unknown_figure_fails_cleanly(self, capsys):
        assert main(["sweep", "--figure", "fig99"]) == 2
        assert "unknown report section" in capsys.readouterr().err

    def test_figure_refuses_matrix_flags(self, capsys):
        assert main(["sweep", "--figure", "fig4", "--scale", "0.03",
                     "--datasets", "VT"]) == 2
        err = capsys.readouterr().err
        assert "--scale" in err and "--datasets" in err
        assert "REPRO_SCALE" in err


class TestReportCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.results_dir.endswith("results")
        assert args.cache_dir is None
        assert args.jobs == 1
        assert args.section == []

    def test_list_sections(self, capsys):
        assert main(["report", "--list-sections"]) == 0
        out = capsys.readouterr().out
        assert "table1_configs" in out
        assert "fig10" in out

    def test_pure_sections_end_to_end(self, tmp_path, capsys):
        results = tmp_path / "results"
        assert main(["report", "--results-dir", str(results),
                     "--section", "table1", "--section", "fig4",
                     "--section", "area"]) == 0
        out = capsys.readouterr().out
        assert "sections: 3" in out
        assert (results / "REPORT.md").exists()
        assert (results / "REPORT.provenance.json").exists()
        assert (results / "table1_configs.txt").exists()
        text = (results / "REPORT.md").read_text()
        assert "Table 1 — configurations" in text
        assert "## Provenance" in text

    def test_charts_rendered_and_embedded(self, tmp_path, capsys):
        results = tmp_path / "results"
        assert main(["report", "--results-dir", str(results), "--charts",
                     "--section", "fig4", "--section", "table1"]) == 0
        chart = results / "fig04_crossbar_frequency.chart.txt"
        assert chart.exists()
        assert "█" in chart.read_text()     # bars actually rendered
        # table1 has no natural chart: no file, no crash
        assert not (results / "table1_configs.chart.txt").exists()
        report = (results / "REPORT.md").read_text()
        assert "crossbar frequency (GHz) vs ports" in report

    def test_charts_off_by_default(self, tmp_path, capsys):
        results = tmp_path / "results"
        assert main(["report", "--results-dir", str(results), "--charts",
                     "--section", "fig4"]) == 0
        # a later run without --charts leaves the chart file but omits
        # the chart blocks from the rebuilt report
        assert main(["report", "--results-dir", str(results),
                     "--section", "fig4"]) == 0
        report = (results / "REPORT.md").read_text()
        assert "crossbar frequency (GHz) vs ports" not in report

    def test_existing_chart_refreshed_without_charts_flag(self, tmp_path):
        """A chart must always derive from the same rows as its table:
        regenerating a section rewrites an existing chart file even
        when --charts is not given, so it can never go stale."""
        results = tmp_path / "results"
        assert main(["report", "--results-dir", str(results), "--charts",
                     "--section", "fig4"]) == 0
        chart = results / "fig04_crossbar_frequency.chart.txt"
        fresh = chart.read_text()
        chart.write_text("stale chart from an older cache\n")
        assert main(["report", "--results-dir", str(results),
                     "--section", "fig4"]) == 0
        assert chart.read_text() == fresh

    def test_unknown_section_fails_cleanly(self, tmp_path, capsys):
        assert main(["report", "--results-dir", str(tmp_path),
                     "--section", "nope"]) == 2
        assert "unknown report section" in capsys.readouterr().err


class TestCacheCommand:
    def _warm(self, tmp_path):
        assert main(["sweep", "--datasets", "VT", "--scale", "0.03",
                     "--algorithms", "BFS", "--configs", "higraph",
                     "--cache-dir", str(tmp_path)]) == 0

    def test_info(self, tmp_path, capsys):
        self._warm(tmp_path)
        capsys.readouterr()
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out

    def test_gc_requires_a_budget(self, tmp_path, capsys):
        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_nonexistent_cache_dir_is_an_error_not_a_mkdir(self, tmp_path, capsys):
        missing = tmp_path / "typoed-cahe"
        assert main(["cache", "info", "--cache-dir", str(missing)]) == 2
        assert "no such cache directory" in capsys.readouterr().err
        assert not missing.exists()
        assert main(["cache", "gc", "--cache-dir", str(missing),
                     "--max-age", "1d"]) == 2
        assert "no such cache directory" in capsys.readouterr().err
        assert not missing.exists()

    def test_gc_by_age_and_size_units(self, tmp_path, capsys):
        self._warm(tmp_path)
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-age", "7d", "--max-bytes", "1G"]) == 0
        assert "removed 0" in capsys.readouterr().out
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-age", "0s"]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_gc_dry_run(self, tmp_path, capsys):
        self._warm(tmp_path)
        capsys.readouterr()
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-bytes", "0", "--dry-run"]) == 0
        assert "would remove 1" in capsys.readouterr().out
        assert main(["cache", "info", "--cache-dir", str(tmp_path)]) == 0
        assert "entries: 1" in capsys.readouterr().out

    def test_malformed_budgets_fail_cleanly(self, tmp_path, capsys):
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-age", "sevendays"]) == 2
        assert "malformed age" in capsys.readouterr().err
        assert main(["cache", "gc", "--cache-dir", str(tmp_path),
                     "--max-bytes", "-1"]) == 2
        assert "size must be >= 0" in capsys.readouterr().err


class TestBudgetParsers:
    def test_age_units(self):
        from repro.cli import parse_age_seconds
        assert parse_age_seconds("90") == 90
        assert parse_age_seconds("90s") == 90
        assert parse_age_seconds("2m") == 120
        assert parse_age_seconds("2h") == 7200
        assert parse_age_seconds("1d") == 86400
        assert parse_age_seconds("1w") == 604800

    def test_size_units(self):
        from repro.cli import parse_size_bytes
        assert parse_size_bytes("1024") == 1024
        assert parse_size_bytes("2K") == 2048
        assert parse_size_bytes("3M") == 3 * 1024**2
        assert parse_size_bytes("1G") == 1024**3

    def test_rejects_garbage(self):
        import pytest as _pytest
        from repro.cli import parse_age_seconds, parse_size_bytes
        with _pytest.raises(ValueError):
            parse_age_seconds("x7d")
        with _pytest.raises(ValueError):
            parse_size_bytes("")


class TestSharedFlags:
    """The parent parsers shared by simulate/sweep/report/serve."""

    @pytest.mark.parametrize("argv", [
        ["sweep", "--engine", "reference", "--jobs", "3",
         "--cache-dir", "/tmp/c", "--no-cache"],
        ["report", "--engine", "reference", "--jobs", "3",
         "--cache-dir", "/tmp/c", "--no-cache"],
        ["serve", "--socket", "/tmp/s.sock", "--engine", "reference",
         "--jobs", "3", "--cache-dir", "/tmp/c", "--no-cache"],
    ])
    def test_execution_flags_on_every_front_end(self, argv):
        args = build_parser().parse_args(argv)
        assert args.engine == "reference"
        assert args.jobs == 3
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache

    def test_simulate_takes_engine_only(self):
        assert build_parser().parse_args(
            ["simulate", "--engine", "reference"]).engine == "reference"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--jobs", "2"])

    def test_env_fallbacks(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/env-cache")
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 7
        assert args.cache_dir == "/tmp/env-cache"

    def test_explicit_flags_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/env-cache")
        args = build_parser().parse_args(
            ["report", "--jobs", "2", "--cache-dir", "/tmp/flag"])
        assert args.jobs == 2
        assert args.cache_dir == "/tmp/flag"

    def test_malformed_jobs_env_fails_at_parse_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "several")
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep"])

    def test_serve_requires_socket_to_start_a_daemon(self, capsys):
        # argparse accepts the bare form (the verbs need no --socket);
        # the handler rejects a daemon start without one
        assert build_parser().parse_args(["serve"]).socket is None
        assert main(["serve"]) == 2
        assert "--socket" in capsys.readouterr().err
        args = build_parser().parse_args(["serve", "--socket", "/tmp/d.sock"])
        assert args.socket == "/tmp/d.sock"
        assert args.verb is None

    @pytest.mark.parametrize("command", ["sweep", "report"])
    def test_connect_flag(self, command):
        args = build_parser().parse_args(
            [command, "--connect", "/tmp/d.sock"])
        assert args.connect == "/tmp/d.sock"
        assert build_parser().parse_args([command]).connect is None


class TestServeVerbs:
    """`repro serve reload|status --connect SOCKET` client verbs."""

    @pytest.mark.parametrize("verb", ["reload", "status"])
    def test_verbs_parse_without_socket(self, verb):
        args = build_parser().parse_args(
            ["serve", verb, "--connect", "/tmp/d.sock"])
        assert args.verb == verb
        assert args.connect == "/tmp/d.sock"

    def test_unknown_verb_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "restart"])

    @pytest.mark.parametrize("verb", ["reload", "status"])
    def test_verb_requires_connect(self, verb, capsys):
        assert main(["serve", verb]) == 2
        assert "--connect" in capsys.readouterr().err

    @pytest.mark.parametrize("verb", ["reload", "status"])
    def test_unreachable_daemon_is_clear_error(self, verb, capsys):
        assert main(["serve", verb, "--connect", "/tmp/no-such.sock"]) == 2
        err = capsys.readouterr().err
        assert "cannot reach daemon" in err
