"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.dataset == "R14"
        assert args.config == "all"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--dataset", "nope"])


class TestCommands:
    def test_datasets_prints_table2(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for key in ("VT", "EP", "SL", "TW", "R14", "R16"):
            assert key in out
        assert "1048576" in out   # R14 edges

    def test_frequency_lookup(self, capsys):
        assert main(["frequency", "--crossbar-ports", "64"]) == 0
        out = capsys.readouterr().out
        assert "0.720 GHz" in out

    def test_frequency_mdp(self, capsys):
        assert main(["frequency", "--mdp-channels", "32"]) == 0
        out = capsys.readouterr().out
        assert "mdp(32 channels" in out

    def test_netlist_summary(self, capsys):
        assert main(["netlist", "--channels", "8", "--radix", "2"]) == 0
        out = capsys.readouterr().out
        assert "fifo_instances" in out
        assert "24" in out        # 8 channels x 3 stages

    def test_netlist_writes_verilog(self, tmp_path, capsys):
        target = tmp_path / "net.v"
        assert main(["netlist", "--channels", "4", "-o", str(target)]) == 0
        text = target.read_text()
        assert "module mdp_network_n4_r2" in text

    def test_simulate_single_config(self, capsys):
        assert main(["simulate", "--dataset", "VT", "--scale", "0.05",
                     "--algorithm", "BFS", "--config", "higraph"]) == 0
        out = capsys.readouterr().out
        assert "HiGraph" in out
        assert "gteps" in out

    def test_simulate_all_configs(self, capsys):
        assert main(["simulate", "--dataset", "VT", "--scale", "0.05",
                     "--algorithm", "PR", "--pr-iterations", "1"]) == 0
        out = capsys.readouterr().out
        for name in ("GraphDynS", "HiGraph", "HiGraph-mini"):
            assert name in out

    def test_figure_fig4(self, capsys):
        assert main(["figure", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "ports" in out and "256" in out

    def test_figure_radix(self, capsys):
        assert main(["figure", "radix", "--dataset", "R14",
                     "--scale", "0.03125"]) == 0
        out = capsys.readouterr().out
        assert "radix" in out


class TestSweepCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache

    def test_serial_no_cache(self, capsys):
        assert main(["sweep", "--datasets", "VT", "--scale", "0.03",
                     "--algorithms", "BFS", "--configs", "higraph",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "sweep: 1 jobs" in out
        assert "cache hits: 0" in out

    def test_parallel_matches_serial_and_cache_warms(self, tmp_path, capsys):
        argv = ["sweep", "--datasets", "VT", "--scale", "0.03",
                "--algorithms", "BFS,PR", "--cache-dir", str(tmp_path)]
        assert main(argv + ["--jobs", "2"]) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        # identical table rows regardless of workers / cache state
        table = lambda text: text.split("\n\njobs:")[0]
        assert table(cold) == table(warm)
        assert "cache hits: 6 (100%)" in warm
        assert "executed: 0" in warm

    def test_axis_expansion(self, capsys):
        assert main(["sweep", "--datasets", "VT", "--scale", "0.03",
                     "--algorithms", "BFS", "--configs", "higraph",
                     "--axis", "fifo_depth=40,160", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "sweep: 2 jobs" in out
        assert "fifo_depth" in out

    def test_unknown_dataset_fails_cleanly(self, capsys):
        assert main(["sweep", "--datasets", "NOPE"]) == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_unknown_config_fails_cleanly(self, capsys):
        assert main(["sweep", "--datasets", "VT", "--configs", "nope"]) == 2
        assert "unknown config" in capsys.readouterr().err

    def test_malformed_axis_fails_cleanly(self, capsys):
        assert main(["sweep", "--datasets", "VT", "--axis", "fifo_depth"]) == 2
        assert "--axis expects" in capsys.readouterr().err
